//! # datc-engine — fleet-scale multi-channel D-ATC encoding
//!
//! The paper's point is that D-ATC is cheap enough to run per electrode
//! at scale; this crate is the scale. [`FleetRunner`] encodes N channels
//! by sharding them over `std::thread` workers, each worker driving one
//! struct-of-arrays [`BankStream`] kernel
//! over its contiguous slice of channels, and reassembling per-channel
//! outputs in channel order. No dependencies beyond the workspace.
//!
//! ## Guarantees
//!
//! * **Bit-exact**: every channel's events, duty counters and threshold
//!   trajectory are identical to a standalone
//!   [`DatcEncoder::encode`](datc_core::DatcEncoder) of that channel's
//!   signal (at [`TraceLevel::Events`](datc_core::TraceLevel)) — and
//!   with [`with_comparators`](FleetRunner::with_comparators), to a
//!   standalone encoder carrying the same offset/hysteresis/noise
//!   comparator model. Non-ideal fleets run through the same SoA bank
//!   kernels; there is no per-channel slow path.
//! * **Deterministic sharding**: the output is independent of the thread
//!   count, of where shard boundaries fall, and of the cache-tiling and
//!   SIMD policies — channels never interact during encoding; they only
//!   meet in the (ordered, deterministic) AER merge.
//!
//! ## Throughput
//!
//! The hot loop is the SoA bank kernel: one comparator compare, one
//! counter add and one LUT-refreshed threshold voltage per channel per
//! tick, with the frame countdown and interval ROM shared across the
//! shard. Measured numbers (channels·samples/s, sweep over channels ×
//! threads) are written to `BENCH_fleet.json` by the `bench_fleet`
//! benchmark in `datc-bench`.
//!
//! ## Example
//!
//! ```
//! use datc_core::{DatcConfig, TraceLevel};
//! use datc_engine::FleetRunner;
//! use datc_signal::Signal;
//!
//! let signals: Vec<Signal> = (0..8)
//!     .map(|c| {
//!         Signal::from_fn(2500.0, 1.0, move |t| {
//!             ((t * (40.0 + c as f64 * 7.0)).sin()).abs() * 0.5
//!         })
//!     })
//!     .collect();
//! let fleet = FleetRunner::new(DatcConfig::paper(), 8)?.with_threads(2);
//! let out = fleet.encode(&signals);
//! assert_eq!(out.channels.len(), 8);
//! let report = out.merge_aer(25e-6); // one serial AER link
//! assert!(report.merged.len() > 0);
//! # Ok::<(), datc_core::CoreError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod obs;

use crate::obs::FleetObs;
use datc_core::bank::{BankEventSink, BankStream, SimdPolicy, TilePolicy};
use datc_core::comparator::Comparator;
use datc_core::datc::DatcOutput;
use datc_core::error::CoreError;
use datc_core::event::EventStream;
use datc_core::DatcConfig;
use datc_signal::resample::ZohResampler;
use datc_signal::Signal;
use datc_uwb::aer::{merge_channel_refs, MergeReport};

/// Everything one fleet encode produces.
///
/// Each per-channel element is a plain
/// [`DatcOutput`] at the events-only trace
/// level, so fleet results plug directly into the single-channel
/// pipeline APIs — `UwbTx::transmit_encoded`, `Link::run_encoded` and
/// the batched `Link::run_encoded_batch` in `datc-rx`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutput {
    /// Per-channel encoder outputs, in channel order.
    pub channels: Vec<DatcOutput>,
    /// System-clock ticks executed per channel (channels run in
    /// lock-step).
    pub ticks: u64,
}

impl FleetOutput {
    /// Number of channels encoded.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Events summed over the whole fleet.
    pub fn total_events(&self) -> usize {
        self.channels.iter().map(|c| c.events.len()).sum()
    }

    /// Clones of the per-channel event streams; prefer
    /// [`merge_aer`](FleetOutput::merge_aer) (which borrows) or
    /// [`into_event_streams`](FleetOutput::into_event_streams) (which
    /// moves) when the copies aren't needed.
    pub fn event_streams(&self) -> Vec<EventStream> {
        self.channels.iter().map(|c| c.events.clone()).collect()
    }

    /// Consumes the output, keeping only the per-channel event streams.
    pub fn into_event_streams(self) -> Vec<EventStream> {
        self.channels.into_iter().map(|c| c.events).collect()
    }

    /// Merges every channel onto one serial AER link with the given
    /// pattern dead time (see `datc_uwb::aer::merge_channels`).
    pub fn merge_aer(&self, dead_time_s: f64) -> MergeReport {
        let streams: Vec<&EventStream> = self.channels.iter().map(|c| &c.events).collect();
        merge_channel_refs(&streams, dead_time_s)
    }
}

/// Sharded multi-threaded driver over the SoA bank kernel.
///
/// Channels are split into `threads` contiguous shards; each worker owns
/// one [`BankStream`] for its shard and
/// streams its signals through it. Workers never share mutable state, so
/// the result is identical for any thread count — including 1, which
/// runs inline without spawning.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: DatcConfig,
    channels: usize,
    threads: usize,
    tiling: TilePolicy,
    simd: SimdPolicy,
    comparators: Option<Vec<Comparator>>,
    obs: Option<FleetObs>,
}

impl FleetRunner {
    /// Creates a runner for `channels` identical-configuration encoders.
    /// The thread count defaults to the machine's available parallelism,
    /// capped by the channel count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// validation or `channels` is zero.
    pub fn new(config: DatcConfig, channels: usize) -> Result<Self, CoreError> {
        // Validate eagerly (config + channel count) via a probe kernel.
        let _ = BankStream::new(config, channels)?;
        Ok(FleetRunner {
            config,
            channels,
            threads: available_parallelism().clamp(1, channels),
            tiling: TilePolicy::default(),
            simd: SimdPolicy::default(),
            comparators: None,
            obs: None,
        })
    }

    /// Attaches per-channel comparator models (offset / hysteresis /
    /// noise). Non-ideal fleets run through the same SoA
    /// [`BankStream`] kernels as ideal ones —
    /// there is no per-channel slow path — and stay bit-exact with N
    /// standalone encoders carrying the same configs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the vector length
    /// differs from the channel count or a parameter is non-finite
    /// (validated via a probe kernel).
    pub fn with_comparators(mut self, comparators: Vec<Comparator>) -> Result<Self, CoreError> {
        // Probe-validate against the bank kernel the shards will build.
        let _ = BankStream::new(self.config, self.channels)?.with_comparators(&comparators)?;
        self.comparators = Some(comparators);
        Ok(self)
    }

    /// Overrides the shard-internal cache-tiling policy (default
    /// [`TilePolicy::auto`]). Output is bit-identical for every policy;
    /// this is a locality knob for large banks.
    pub fn with_tiling(mut self, tiling: TilePolicy) -> Self {
        self.tiling = tiling;
        self
    }

    /// Overrides the SIMD policy forwarded to every shard kernel
    /// (default [`SimdPolicy::Auto`]); every policy is bit-identical.
    pub fn with_simd_policy(mut self, simd: SimdPolicy) -> Self {
        self.simd = simd;
        self
    }

    /// Publishes encode throughput and tiling occupancy into `registry`
    /// after every [`encode`](FleetRunner::encode) /
    /// [`encode_merged`](FleetRunner::encode_merged) call — and into the
    /// same series from any [`FleetEncoder`] built afterwards via
    /// [`sustained`](FleetRunner::sustained). Metric names are the
    /// `datc_fleet_*` constants in [`obs`]. Encoding itself is
    /// untouched: totals the encode already computed are synced with a
    /// handful of relaxed atomic adds per call, so the overhead is
    /// independent of fleet size and signal length.
    #[must_use]
    pub fn with_metrics(mut self, registry: &datc_obs::Registry) -> Self {
        self.obs = Some(FleetObs::register(registry));
        self
    }

    /// Overrides the worker thread count (clamped to `1..=channels`).
    ///
    /// This sets the shard count and the parallelism ceiling; at encode
    /// time the number of OS threads actually spawned is additionally
    /// capped by `std::thread::available_parallelism()`, with surplus
    /// shards processed serially — the output is bit-identical either
    /// way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, self.channels);
        self
    }

    /// The shared encoder configuration.
    pub fn config(&self) -> &DatcConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Worker threads used per encode.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Encodes one signal per channel (all at a common sample rate and
    /// length) into per-channel outputs.
    ///
    /// # Panics
    ///
    /// Panics when the signal count differs from the channel count or the
    /// signals disagree on sample rate/length.
    pub fn encode(&self, signals: &[Signal]) -> FleetOutput {
        assert_eq!(signals.len(), self.channels, "one signal per channel");
        // Enforce the rate/length contract across the WHOLE fleet here:
        // each shard only sees its own slice, so a cross-shard mismatch
        // would otherwise slip through with internally-consistent shards.
        if let Some(first) = signals.first() {
            assert!(
                signals
                    .iter()
                    .all(|s| s.sample_rate() == first.sample_rate()),
                "signals must share a sample rate"
            );
            assert!(
                signals.iter().all(|s| s.len() == first.len()),
                "signals must share a length"
            );
        }
        let duration = signals.first().map_or(0.0, Signal::duration);

        // `threads` is the parallelism ceiling; the worker count is
        // additionally capped by the machine's parallelism, because
        // oversubscribing a small core count only adds scheduling
        // overhead. Each worker runs ONE bank kernel over a contiguous
        // channel range — per-channel results are independent, so the
        // output is bit-identical for any worker count or boundary
        // placement (property-tested). The calling thread works the
        // first shard itself; only `workers - 1` threads are spawned.
        let workers = self
            .threads
            .min(available_parallelism())
            .clamp(1, self.channels);
        let shards = shard_ranges(self.channels, workers);
        let shard_params = ShardParams {
            config: self.config,
            tiling: self.tiling,
            simd: self.simd,
        };
        let comps = self.comparators.as_deref();
        let comps_for = |range: &std::ops::Range<usize>| comps.map(|c| &c[range.clone()]);
        let mut per_shard: Vec<ShardResult> = Vec::with_capacity(shards.len());
        if shards.len() == 1 {
            per_shard.push(run_shard(
                shard_params,
                &signals[shards[0].clone()],
                comps_for(&shards[0]),
            ));
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards[1..]
                    .iter()
                    .map(|range| {
                        let shard_signals = &signals[range.clone()];
                        let shard_comps = comps_for(range);
                        scope.spawn(move || run_shard(shard_params, shard_signals, shard_comps))
                    })
                    .collect();
                per_shard.push(run_shard(
                    shard_params,
                    &signals[shards[0].clone()],
                    comps_for(&shards[0]),
                ));
                for h in handles {
                    per_shard.push(h.join().expect("shard worker panicked"));
                }
            });
        }

        let ticks = per_shard.first().map_or(0, |s| s.ticks);
        let mut channels = Vec::with_capacity(self.channels);
        for shard in per_shard {
            debug_assert_eq!(shard.ticks, ticks, "shards run in lock-step");
            for (events, ones) in shard.events.into_iter().zip(shard.ones) {
                channels.push(DatcOutput {
                    // Kernel emission order is tick order by construction;
                    // skip the O(events) ordering re-scan per channel.
                    events: EventStream::from_ordered(
                        events,
                        self.config.clock_hz,
                        duration.max(f64::MIN_POSITIVE),
                    ),
                    vth_code_trace: Vec::new(),
                    vth_volt_trace: Vec::new(),
                    d_out: Vec::new(),
                    frame_codes: Vec::new(),
                    ticks,
                    ones,
                });
            }
        }
        let out = FleetOutput { channels, ticks };
        if let Some(obs) = &self.obs {
            obs.note_encode(
                self.channels,
                signals.first().map_or(0, Signal::len),
                ticks,
                out.total_events(),
                obs::tile_occupancy(&shards, self.tiling),
            );
        }
        out
    }

    /// Encodes the fleet and merges every channel onto one serial AER
    /// link in a single call.
    pub fn encode_merged(
        &self,
        signals: &[Signal],
        dead_time_s: f64,
    ) -> (FleetOutput, MergeReport) {
        let out = self.encode(signals);
        let report = out.merge_aer(dead_time_s);
        (out, report)
    }

    /// Builds a reusable [`FleetEncoder`] that keeps one bank kernel and
    /// one event sink per shard alive across encodes.
    ///
    /// [`encode`](FleetRunner::encode) constructs fresh kernels and
    /// sinks on every call — megabytes of cold allocation per 64-channel
    /// fleet, which dominates once the same runner is driven repeatedly
    /// (workload scenarios, gateways, benches; the ROADMAP's
    /// `fleet_64ch_vs_16ch_cold_encode_ratio` item). The sustained
    /// encoder recycles that storage: each call resets the kernels to
    /// power-on state ([`BankStream::reset`]) and clears the sinks
    /// keeping their capacity ([`BankEventSink::clear`]), so output is
    /// **bit-identical** to a cold [`encode`](FleetRunner::encode) while
    /// steady-state allocation drops to the per-call output buffers.
    pub fn sustained(&self) -> FleetEncoder {
        let workers = self
            .threads
            .min(available_parallelism())
            .clamp(1, self.channels);
        let ranges = shard_ranges(self.channels, workers);
        let comps = self.comparators.as_deref();
        let shards = ranges
            .iter()
            .map(|range| {
                let mut bank = BankStream::new(self.config, range.len())
                    .expect("validated in FleetRunner::new")
                    .with_tiling(self.tiling)
                    .with_simd_policy(self.simd);
                if let Some(c) = comps {
                    bank = bank
                        .with_comparators(&c[range.clone()])
                        .expect("validated in FleetRunner::with_comparators");
                }
                ShardState {
                    bank,
                    sink: BankEventSink::new(self.config.clock_hz, range.len()),
                }
            })
            .collect();
        let occupancy = obs::tile_occupancy(&ranges, self.tiling);
        FleetEncoder {
            config: self.config,
            channels: self.channels,
            ranges,
            shards,
            obs: self.obs.clone(),
            occupancy,
        }
    }
}

/// A long-lived fleet encoder that recycles per-shard kernels and event
/// sinks across calls — see [`FleetRunner::sustained`].
#[derive(Debug)]
pub struct FleetEncoder {
    config: DatcConfig,
    channels: usize,
    ranges: Vec<std::ops::Range<usize>>,
    shards: Vec<ShardState>,
    obs: Option<FleetObs>,
    // The shard layout is fixed at build time, so the tile occupancy is
    // computed once here rather than per encode.
    occupancy: f64,
}

#[derive(Debug)]
struct ShardState {
    bank: BankStream,
    sink: BankEventSink,
}

impl ShardState {
    /// One recycled encode over this shard's signals: reset to power-on,
    /// clear the sink (keeping capacity), stream, and copy the events
    /// out (exact-sized allocations — the only per-call allocation that
    /// remains).
    fn encode(&mut self, signals: &[Signal], config: &DatcConfig) -> ShardResult {
        self.bank.reset();
        self.sink.clear();
        if let Some(first) = signals.first() {
            let expected_ticks =
                ZohResampler::new(first.sample_rate(), config.clock_hz).ticks_for_len(first.len());
            // after clear() the buffers are empty but keep capacity, so
            // this is a no-op from the second call on
            self.sink
                .reserve_events((expected_ticks / 14).min(1 << 15) as usize);
        }
        let ticks = self.bank.push_signals(signals, &mut self.sink);
        ShardResult {
            events: (0..signals.len())
                .map(|c| self.sink.events(c).to_vec())
                .collect(),
            ones: self.sink.ones().to_vec(),
            ticks,
        }
    }
}

impl FleetEncoder {
    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Encodes one signal per channel, recycling the shard kernels and
    /// sinks. Output is bit-identical to
    /// [`FleetRunner::encode`] of the same signals.
    ///
    /// # Panics
    ///
    /// Panics when the signal count differs from the channel count or
    /// the signals disagree on sample rate/length (same contract as
    /// [`FleetRunner::encode`]).
    pub fn encode(&mut self, signals: &[Signal]) -> FleetOutput {
        assert_eq!(signals.len(), self.channels, "one signal per channel");
        if let Some(first) = signals.first() {
            assert!(
                signals
                    .iter()
                    .all(|s| s.sample_rate() == first.sample_rate()),
                "signals must share a sample rate"
            );
            assert!(
                signals.iter().all(|s| s.len() == first.len()),
                "signals must share a length"
            );
        }
        let duration = signals.first().map_or(0.0, Signal::duration);
        let config = self.config;

        let mut per_shard: Vec<ShardResult> = Vec::with_capacity(self.ranges.len());
        if self.shards.len() == 1 {
            per_shard.push(self.shards[0].encode(&signals[self.ranges[0].clone()], &config));
        } else {
            let (first_range, rest_ranges) = self.ranges.split_first().expect("at least one shard");
            let (first_shard, rest_shards) = self.shards.split_first_mut().expect("shards");
            std::thread::scope(|scope| {
                let handles: Vec<_> = rest_ranges
                    .iter()
                    .zip(rest_shards)
                    .map(|(range, shard)| {
                        let shard_signals = &signals[range.clone()];
                        scope.spawn(move || shard.encode(shard_signals, &config))
                    })
                    .collect();
                per_shard.push(first_shard.encode(&signals[first_range.clone()], &config));
                for h in handles {
                    per_shard.push(h.join().expect("shard worker panicked"));
                }
            });
        }

        let ticks = per_shard.first().map_or(0, |s| s.ticks);
        let mut channels = Vec::with_capacity(self.channels);
        for shard in per_shard {
            debug_assert_eq!(shard.ticks, ticks, "shards run in lock-step");
            for (events, ones) in shard.events.into_iter().zip(shard.ones) {
                channels.push(DatcOutput {
                    events: EventStream::from_ordered(
                        events,
                        config.clock_hz,
                        duration.max(f64::MIN_POSITIVE),
                    ),
                    vth_code_trace: Vec::new(),
                    vth_volt_trace: Vec::new(),
                    d_out: Vec::new(),
                    frame_codes: Vec::new(),
                    ticks,
                    ones,
                });
            }
        }
        let out = FleetOutput { channels, ticks };
        if let Some(obs) = &self.obs {
            obs.note_encode(
                self.channels,
                signals.first().map_or(0, Signal::len),
                ticks,
                out.total_events(),
                self.occupancy,
            );
        }
        out
    }
}

struct ShardResult {
    events: Vec<Vec<datc_core::Event>>,
    ones: Vec<u64>,
    ticks: u64,
}

/// Everything a shard worker needs to build its kernel, in one `Copy`
/// bundle so the spawn closures stay `move`-friendly.
#[derive(Clone, Copy)]
struct ShardParams {
    config: DatcConfig,
    tiling: TilePolicy,
    simd: SimdPolicy,
}

fn run_shard(
    params: ShardParams,
    signals: &[Signal],
    comparators: Option<&[Comparator]>,
) -> ShardResult {
    let config = params.config;
    let mut bank = BankStream::new(config, signals.len())
        .expect("validated in FleetRunner::new")
        .with_tiling(params.tiling)
        .with_simd_policy(params.simd);
    if let Some(comps) = comparators {
        bank = bank
            .with_comparators(comps)
            .expect("validated in FleetRunner::with_comparators");
    }
    let mut sink = BankEventSink::new(config.clock_hz, signals.len());
    if let Some(first) = signals.first() {
        // Pre-size the event buffers so a realistic recording never
        // reallocates mid-encode (a growth wave across 64 channels
        // evicts the hot tile state); an active sEMG channel fires well
        // under one event per 14 clock ticks. The cap bounds the
        // up-front commitment for pathological durations.
        let expected_ticks =
            ZohResampler::new(first.sample_rate(), config.clock_hz).ticks_for_len(first.len());
        sink.reserve_events((expected_ticks / 14).min(1 << 15) as usize);
    }
    let ticks = bank.push_signals(signals, &mut sink);
    let (events, ones, _) = sink.into_parts();
    ShardResult {
        events,
        ones,
        ticks,
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `n` channels into at most `t` contiguous, balanced ranges.
fn shard_ranges(n: usize, t: usize) -> Vec<std::ops::Range<usize>> {
    let t = t.clamp(1, n.max(1));
    let base = n / t;
    let rem = n % t;
    let mut ranges = Vec::with_capacity(t);
    let mut start = 0;
    for i in 0..t {
        let len = base + usize::from(i < rem);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use datc_core::encoder::SpikeEncoder;
    use datc_core::{DatcEncoder, TraceLevel};

    fn fleet_signals(n: usize, seconds: f64) -> Vec<Signal> {
        (0..n)
            .map(|c| {
                Signal::from_fn(2500.0, seconds, move |t| {
                    let f = 31.0 + 9.0 * c as f64;
                    ((t * f).sin() * (t * 2.3).cos()).abs() * (0.25 + 0.04 * c as f64)
                })
            })
            .collect()
    }

    #[test]
    fn shard_ranges_cover_and_balance() {
        for (n, t) in [(16, 4), (16, 3), (5, 8), (1, 1), (7, 2)] {
            let ranges = shard_ranges(n, t);
            assert!(ranges.len() <= t);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(w[0].len() >= w[1].len(), "front-loaded balance");
            }
        }
    }

    #[test]
    fn fleet_matches_per_channel_batch_encoder() {
        let signals = fleet_signals(6, 2.0);
        let fleet = FleetRunner::new(DatcConfig::paper(), 6)
            .unwrap()
            .with_threads(3);
        let out = fleet.encode(&signals);
        let solo = DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events));
        for (c, s) in signals.iter().enumerate() {
            let reference = solo.encode(s);
            assert_eq!(out.channels[c].events, reference.events, "channel {c}");
            assert_eq!(out.channels[c].ones, reference.ones);
            assert_eq!(out.channels[c].ticks, reference.ticks);
        }
    }

    #[test]
    fn nonideal_fleet_matches_per_channel_encoders_with_comparators() {
        use datc_core::comparator::Comparator;
        let signals = fleet_signals(7, 1.5);
        let comps: Vec<Comparator> = (0..7)
            .map(|c| match c % 4 {
                0 => Comparator::ideal().with_offset(0.011),
                1 => Comparator::ideal().with_hysteresis(0.04),
                2 => Comparator::ideal().with_noise(0.02, 5 + c as u64),
                _ => Comparator::ideal()
                    .with_offset(-0.006)
                    .with_hysteresis(0.02)
                    .with_noise(0.01, 31 + c as u64),
            })
            .collect();
        let fleet = FleetRunner::new(DatcConfig::paper(), 7)
            .unwrap()
            .with_comparators(comps.clone())
            .unwrap()
            .with_threads(3);
        let out = fleet.encode(&signals);
        for (c, s) in signals.iter().enumerate() {
            let solo = DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events))
                .with_comparator(comps[c].clone());
            let reference = solo.encode(s);
            assert_eq!(out.channels[c].events, reference.events, "channel {c}");
            assert_eq!(out.channels[c].ones, reference.ones, "channel {c}");
            assert_eq!(out.channels[c].ticks, reference.ticks, "channel {c}");
        }

        // thread count and tiling stay execution details for non-ideal
        // fleets too
        for threads in [1, 2, 7] {
            let other = FleetRunner::new(DatcConfig::paper(), 7)
                .unwrap()
                .with_comparators(comps.clone())
                .unwrap()
                .with_threads(threads)
                .with_tiling(datc_core::bank::TilePolicy {
                    max_tile_channels: 2,
                    target_tile_bytes: 8192,
                })
                .encode(&signals);
            assert_eq!(other, out, "threads={threads}");
        }
    }

    #[test]
    fn comparator_count_mismatch_rejected() {
        use datc_core::comparator::Comparator;
        let err = FleetRunner::new(DatcConfig::paper(), 4)
            .unwrap()
            .with_comparators(vec![Comparator::ideal(); 3]);
        assert!(err.is_err());
    }

    #[test]
    fn output_is_independent_of_thread_count_and_shard_boundaries() {
        let signals = fleet_signals(13, 1.5);
        let reference = FleetRunner::new(DatcConfig::paper(), 13)
            .unwrap()
            .with_threads(1)
            .encode(&signals);
        for threads in [2, 3, 5, 13, 64] {
            let out = FleetRunner::new(DatcConfig::paper(), 13)
                .unwrap()
                .with_threads(threads)
                .encode(&signals);
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn merged_aer_stream_is_deterministic() {
        let signals = fleet_signals(4, 1.0);
        let fleet = FleetRunner::new(DatcConfig::paper(), 4).unwrap();
        let (_, a) = fleet.encode_merged(&signals, 25e-6);
        let (_, b) = fleet.with_threads(2).encode_merged(&signals, 25e-6);
        assert_eq!(a, b);
        assert!(!a.merged.is_empty());
    }

    #[test]
    fn fleet_outputs_drive_the_link_pipeline() {
        use datc_rx::pipeline::Link;
        use datc_rx::HybridReconstructor;
        use datc_uwb::channel::SymbolChannel;

        let signals = fleet_signals(3, 2.0);
        let out = FleetRunner::new(DatcConfig::paper(), 3)
            .unwrap()
            .encode(&signals);

        let link = Link::builder()
            .encoder(DatcEncoder::new(
                DatcConfig::paper().with_trace_level(TraceLevel::Events),
            ))
            .channel(SymbolChannel::new(0.05, 0.0))
            .seed(3)
            .reconstructor(HybridReconstructor::paper())
            .build();

        // batch entry point over the fleet's per-channel outputs
        let runs = link.run_encoded_batch(out.channels.clone());
        assert_eq!(runs.len(), 3);

        // identical to encoding each channel through the link itself
        for (run, s) in runs.iter().zip(&signals) {
            let direct = link.run(s);
            assert_eq!(
                run.transmission.transport.received,
                direct.transmission.transport.received
            );
            assert_eq!(
                run.reconstruction.samples(),
                direct.reconstruction.samples()
            );
        }
    }

    #[test]
    fn duty_cycle_survives_the_fleet_path() {
        let signals = fleet_signals(2, 2.0);
        let out = FleetRunner::new(DatcConfig::paper(), 2)
            .unwrap()
            .encode(&signals);
        for ch in &out.channels {
            let duty = ch.duty_cycle();
            assert!(duty > 0.0 && duty < 0.5, "duty {duty}");
        }
    }

    #[test]
    #[should_panic(expected = "signals must share a sample rate")]
    fn cross_shard_rate_mismatch_panics() {
        // two shards, each internally consistent, rates differing across
        // the shard boundary — must still be rejected up front
        let mut signals = fleet_signals(4, 1.0);
        signals[2] = Signal::from_fn(5000.0, 1.0, |t| (t * 40.0).sin().abs() * 0.4);
        signals[3] = Signal::from_fn(5000.0, 1.0, |t| (t * 50.0).sin().abs() * 0.4);
        let fleet = FleetRunner::new(DatcConfig::paper(), 4)
            .unwrap()
            .with_threads(2);
        let _ = fleet.encode(&signals);
    }

    #[test]
    #[should_panic(expected = "one signal per channel")]
    fn channel_count_mismatch_panics() {
        let fleet = FleetRunner::new(DatcConfig::paper(), 3).unwrap();
        let _ = fleet.encode(&fleet_signals(2, 0.5));
    }

    #[test]
    fn zero_channels_rejected() {
        assert!(FleetRunner::new(DatcConfig::paper(), 0).is_err());
    }

    #[test]
    fn sustained_encoder_is_bit_exact_with_cold_encode_across_calls() {
        let runner = FleetRunner::new(DatcConfig::paper(), 6)
            .unwrap()
            .with_threads(3);
        let mut sustained = runner.sustained();
        // repeated encodes over different signals: every call must match
        // a cold encode of the same input (reset/clear leaves no state)
        for round in 0..3 {
            let signals = fleet_signals(6, 1.0 + 0.4 * round as f64);
            assert_eq!(
                sustained.encode(&signals),
                runner.encode(&signals),
                "round {round}"
            );
        }
    }

    #[test]
    fn sustained_encoder_recycles_nonideal_fleets_bit_exactly() {
        use datc_core::comparator::Comparator;
        let comps: Vec<Comparator> = (0..5)
            .map(|c| {
                Comparator::ideal()
                    .with_offset(0.004 * c as f64)
                    .with_noise(0.015, 70 + c as u64)
            })
            .collect();
        let runner = FleetRunner::new(DatcConfig::paper(), 5)
            .unwrap()
            .with_comparators(comps)
            .unwrap()
            .with_threads(2);
        let signals = fleet_signals(5, 1.5);
        let cold = runner.encode(&signals);
        let mut sustained = runner.sustained();
        // same input twice: noise lanes rewind on reset, so the second
        // pass is identical to the first and to the cold path
        assert_eq!(sustained.encode(&signals), cold);
        assert_eq!(sustained.encode(&signals), cold);
    }

    #[test]
    #[cfg_attr(
        not(feature = "metrics"),
        ignore = "counters are no-ops with metrics off"
    )]
    fn metrics_accumulate_across_cold_and_sustained_encodes() {
        use datc_obs::MetricValue;
        let reg = datc_obs::Registry::new();
        let signals = fleet_signals(6, 1.0);
        let runner = FleetRunner::new(DatcConfig::paper(), 6)
            .unwrap()
            .with_threads(2)
            .with_metrics(&reg);
        let cold = runner.encode(&signals);
        let mut sustained = runner.sustained();
        let warm = sustained.encode(&signals);
        assert_eq!(cold, warm);

        let get = |name: &str| {
            reg.snapshot()
                .into_iter()
                .find_map(|(n, _, v)| (n == name).then_some(v))
                .expect("series registered")
        };
        // Both encodes land in the same series.
        assert_eq!(get(obs::FLEET_ENCODES), MetricValue::Counter(2));
        assert_eq!(
            get(obs::FLEET_SAMPLES),
            MetricValue::Counter(2 * 6 * signals[0].len() as u64)
        );
        assert_eq!(
            get(obs::FLEET_TICKS),
            MetricValue::Counter(2 * 6 * cold.ticks)
        );
        assert_eq!(
            get(obs::FLEET_EVENTS),
            MetricValue::Counter(2 * cold.total_events() as u64)
        );
        match get(obs::FLEET_TILE_OCCUPANCY) {
            MetricValue::Gauge(g) => assert!(g > 0.0 && g <= 1.0, "occupancy {g}"),
            other => panic!("gauge expected, got {other:?}"),
        }
        // An un-instrumented runner touches no registry.
        let silent = FleetRunner::new(DatcConfig::paper(), 6).unwrap();
        let before = reg.snapshot();
        let _ = silent.encode(&signals);
        assert_eq!(reg.snapshot(), before);
    }

    #[test]
    fn sustained_encoder_drives_motor_workloads() {
        use datc_signal::motor::{motor_fleet, WorkloadScenario};
        let runner = FleetRunner::new(DatcConfig::paper(), 3).unwrap();
        let mut sustained = runner.sustained();
        for (round, scenario) in WorkloadScenario::all().into_iter().take(2).enumerate() {
            let signals = motor_fleet(scenario, 3, 1.0, 50 + round as u64);
            let out = sustained.encode(&signals);
            assert_eq!(out, runner.encode(&signals), "{}", scenario.name());
            assert!(out.total_events() > 0, "{}", scenario.name());
        }
    }
}
