fn main() {
    for r in datc_experiments::run_all(false) {
        println!("### {} ###\n{}", r.id, r.text);
    }
}
