//! The reference recording used by Figs. 3 and 6 and the evaluation
//! conventions shared by all figure runners.

use datc_core::atc::AtcEncoder;
use datc_core::config::DatcConfig;
use datc_core::datc::{DatcEncoder, DatcOutput};
use datc_core::event::EventStream;
use datc_rx::pipeline::Link;
use datc_rx::reconstruct::{HybridReconstructor, RateReconstructor};
use datc_signal::envelope::arv_envelope;
use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc_signal::Signal;

/// Output rate used for every reconstruction before scoring (Hz).
pub const RECON_FS: f64 = 100.0;
/// Lag-search window used when aligning reconstructions (seconds).
pub const MAX_LAG_S: f64 = 0.3;
/// ARV reference window (seconds).
pub const ARV_WINDOW_S: f64 = 0.25;
/// The fixed ATC thresholds studied by the paper (volts).
pub const ATC_VTH_FIG3: f64 = 0.3;
/// The lowered threshold of Fig. 6 (volts).
pub const ATC_VTH_FIG6: f64 = 0.2;

/// One fully prepared evaluation case: a rectified sEMG waveform with its
/// ground-truth ARV envelope.
#[derive(Debug, Clone)]
pub struct ReferenceCase {
    /// The rectified, amplified sEMG at the comparator input.
    pub rectified: Signal,
    /// ARV envelope of the rectified signal (the correlation reference).
    pub arv: Signal,
}

impl ReferenceCase {
    /// Builds a case from a rectified signal.
    pub fn from_rectified(rectified: Signal) -> Self {
        let arv = arv_envelope(&rectified, ARV_WINDOW_S);
        ReferenceCase { rectified, arv }
    }

    /// The canonical Fig. 3 recording: the paper's MVC grip protocol,
    /// modulated-noise model, 50 000 samples / 20 s, mid-range subject
    /// amplitude (0.40 V ARV at MVC). Chosen (see DESIGN.md §4) so that
    /// the paper's event-count orderings hold: ATC@0.3 V < D-ATC <
    /// ATC@0.2 V.
    pub fn fig3_reference() -> Self {
        let fs = 2500.0;
        let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
        let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
            .generate(&force, 42)
            .to_scaled(0.40)
            .to_rectified();
        ReferenceCase::from_rectified(semg)
    }

    /// Runs fixed-threshold ATC through the standard
    /// [`Link`] pipeline (ideal channel, windowed-rate receiver) and
    /// scores it: `(events, correlation %)`.
    pub fn run_atc(&self, vth: f64) -> (EventStream, f64) {
        let link = Link::builder()
            .encoder(AtcEncoder::new(vth))
            .reconstructor(RateReconstructor::default())
            .output_fs(RECON_FS)
            .build();
        let (run, pct) = link.run_scored(&self.rectified, &self.arv, MAX_LAG_S);
        (run.transmission.encoded.events, pct)
    }

    /// Runs D-ATC (paper configuration) through the standard [`Link`]
    /// pipeline (ideal channel, hybrid receiver) and scores it:
    /// `(full output, correlation %)`.
    pub fn run_datc(&self) -> (DatcOutput, f64) {
        let link = Link::builder()
            .encoder(DatcEncoder::new(DatcConfig::paper()))
            .reconstructor(HybridReconstructor::paper())
            .output_fs(RECON_FS)
            .build();
        let (run, pct) = link.run_scored(&self.rectified, &self.arv, MAX_LAG_S);
        (run.transmission.encoded, pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_dimensions() {
        let r = ReferenceCase::fig3_reference();
        assert_eq!(r.rectified.len(), 50_000);
        assert!((r.rectified.duration() - 20.0).abs() < 1e-9);
        assert_eq!(r.arv.len(), r.rectified.len());
    }

    #[test]
    fn reference_is_deterministic() {
        let a = ReferenceCase::fig3_reference();
        let b = ReferenceCase::fig3_reference();
        assert_eq!(a.rectified, b.rectified);
    }

    #[test]
    fn event_count_ordering_matches_paper() {
        // The paper's Fig. 3 + Fig. 6 relationship:
        // events(ATC@0.3) < events(D-ATC) < events(ATC@0.2).
        let r = ReferenceCase::fig3_reference();
        let (atc3, _) = r.run_atc(ATC_VTH_FIG3);
        let (atc2, _) = r.run_atc(ATC_VTH_FIG6);
        let (datc, _) = r.run_datc();
        assert!(
            atc3.len() < datc.events.len() && datc.events.len() < atc2.len(),
            "ordering violated: {} / {} / {}",
            atc3.len(),
            datc.events.len(),
            atc2.len()
        );
    }
}
