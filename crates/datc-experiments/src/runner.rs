//! Batch execution of all experiments.

use crate::figures::{ablations, fig2, fig3, fig5, fig6, fig7, symbols, table1, workloads};

/// A rendered experiment report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedReport {
    /// Experiment id (e.g. "fig3").
    pub id: &'static str,
    /// The rendered text table.
    pub text: String,
}

/// Runs every experiment. With `quick = true` the corpus-scale sweeps are
/// shrunk (Fig. 5 → 24 patterns, Table I workload → 2 s) so the whole
/// suite finishes in seconds; `quick = false` reproduces the paper-sized
/// runs (190 patterns, 20 s RTL workload).
pub fn run_all(quick: bool) -> Vec<NamedReport> {
    let fig5_n = if quick { 24 } else { 190 };
    let table1_ticks = if quick { 4_000 } else { 40_000 };
    vec![
        NamedReport {
            id: "fig2",
            text: fig2::report(),
        },
        NamedReport {
            id: "fig3",
            text: fig3::report(),
        },
        NamedReport {
            id: "fig5",
            text: fig5::report(fig5_n),
        },
        NamedReport {
            id: "fig6",
            text: fig6::report(),
        },
        NamedReport {
            id: "symbols",
            text: symbols::report(),
        },
        NamedReport {
            id: "fig7",
            text: fig7::report(),
        },
        NamedReport {
            id: "table1",
            text: {
                let r = table1::run(table1_ticks);
                use crate::report::{comparison_table, Row};
                comparison_table(
                    "Table I — DTC simulation and synthesis results",
                    &[
                        Row::new("power supply", "1.8 V", format!("{} V", r.synth.supply_v)),
                        Row::new("number of cells", "512", r.synth.cell_count.to_string()),
                        Row::new("number of ports", "12", r.synth.total_ports.to_string()),
                        Row::new(
                            "core area",
                            "11700 um^2",
                            format!("{:.0} um^2", r.synth.core_area_um2),
                        ),
                        Row::new(
                            "dynamic power (est./meas.)",
                            "~70 nW",
                            format!(
                                "{:.0} / {:.1} nW",
                                r.power_estimated.dynamic_w * 1e9,
                                r.power_measured.dynamic_w * 1e9
                            ),
                        ),
                    ],
                )
            },
        },
        NamedReport {
            id: "ablations",
            text: ablations::report(),
        },
        NamedReport {
            id: "workloads",
            text: workloads::report(if quick { 6.0 } else { 20.0 }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_reports() {
        let reports = run_all(true);
        let ids: Vec<&str> = reports.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![
                "fig2",
                "fig3",
                "fig5",
                "fig6",
                "symbols",
                "fig7",
                "table1",
                "ablations",
                "workloads"
            ]
        );
        for r in &reports {
            assert!(!r.text.is_empty(), "{} report empty", r.id);
        }
    }
}
