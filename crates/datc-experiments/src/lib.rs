//! # datc-experiments — the paper's evaluation, regenerated
//!
//! One module per figure/table of Shahshahani et al., *DATE 2015*, plus
//! the ablations DESIGN.md calls out. Each runner returns a typed result
//! (with the paper's reference values embedded for comparison) and
//! renders a text report.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`figures::fig2`]  | Fig. 2 — constant vs dynamic thresholding concept |
//! | [`figures::fig3`]  | Fig. 3 — reference signal, ATC@0.3 V vs D-ATC |
//! | [`figures::fig5`]  | Fig. 5 — correlation across the 190-pattern corpus |
//! | [`figures::fig6`]  | Fig. 6 — ATC@0.2 V matching D-ATC's correlation |
//! | [`figures::symbols`] | Sec. III-B — symbol-count bullet list |
//! | [`figures::fig7`]  | Fig. 7 — events-vs-correlation trade-off |
//! | [`figures::table1`] | Table I — synthesis and power |
//! | [`figures::ablations`] | frame size / DAC bits / weights / reconstructor sweeps |
//! | [`figures::workloads`] | (extension) reconstruction on Fuglevand motor-pool trajectories |
//!
//! Run everything with [`runner::run_all`]; the `quick` flag shrinks the
//! corpus for CI-speed smoke runs.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod figures;
pub mod reference;
pub mod report;
pub mod runner;

pub use reference::ReferenceCase;
pub use runner::{run_all, NamedReport};
