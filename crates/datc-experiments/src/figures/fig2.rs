//! Fig. 2 — the concept figure: a framed toy sEMG thresholded three ways.
//!
//! (A) a simple sEMG burst split into frames; (B) ATC with a **high**
//! fixed `Vth` misses low-amplitude frames; (C) ATC with a **low** fixed
//! `Vth` floods on strong frames; (D) D-ATC keeps firing balanced across
//! frames; (E) each D-ATC event is a 5-symbol pattern.

use crate::report::{comparison_table, Row};
use datc_core::atc::AtcEncoder;
use datc_core::config::DatcConfig;
use datc_core::datc::DatcEncoder;
use datc_core::encoder::SpikeEncoder;
use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc_uwb::modulator::symbolize_events;
use serde::Serialize;

/// Result of the Fig. 2 demonstration.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Result {
    /// Per-frame event counts for ATC with the high threshold (B).
    pub atc_high_per_frame: Vec<usize>,
    /// Per-frame event counts for ATC with the low threshold (C).
    pub atc_low_per_frame: Vec<usize>,
    /// Per-frame event counts for D-ATC (D).
    pub datc_per_frame: Vec<usize>,
    /// Symbols per D-ATC event (E) — 5 in the paper.
    pub symbols_per_event: usize,
}

impl Fig2Result {
    /// Number of frames the toy signal was split into.
    pub fn n_frames(&self) -> usize {
        self.datc_per_frame.len()
    }

    /// Coefficient of variation of per-frame counts (lower = more
    /// balanced firing — D-ATC's goal).
    pub fn balance(counts: &[usize]) -> f64 {
        let vals: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let m = datc_signal::stats::mean(&vals);
        if m == 0.0 {
            return f64::INFINITY;
        }
        datc_signal::stats::std_dev(&vals) / m
    }
}

/// Runs the Fig. 2 demonstration.
pub fn run() -> Fig2Result {
    let fs = 2500.0;
    // A toy signal with alternating weak and strong contractions.
    let profile = ForceProfile::builder()
        .contraction(0.15, 1.2)
        .rest(0.3)
        .contraction(0.65, 1.2)
        .rest(0.3)
        .contraction(0.25, 1.2)
        .rest(0.3)
        .contraction(0.5, 1.2)
        .rest(0.3)
        .build();
    let duration = profile.duration();
    let force = profile.samples(fs, duration);
    let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, 2015)
        .to_scaled(0.6)
        .to_rectified();

    let frame_s = duration / 8.0;
    let count_frames = |events: &datc_core::event::EventStream| -> Vec<usize> {
        (0..8)
            .map(|i| events.count_in_window(i as f64 * frame_s, (i + 1) as f64 * frame_s))
            .collect()
    };

    let atc_high = AtcEncoder::new(0.35).encode(&semg).events;
    let atc_low = AtcEncoder::new(0.06).encode(&semg).events;
    let datc = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
    let patterns = symbolize_events(&datc.events, 4);
    let symbols_per_event = patterns.first().map(|p| p.len()).unwrap_or(0);

    Fig2Result {
        atc_high_per_frame: count_frames(&atc_high),
        atc_low_per_frame: count_frames(&atc_low),
        datc_per_frame: count_frames(&datc.events),
        symbols_per_event,
    }
}

/// Text report for Fig. 2.
pub fn report() -> String {
    let r = run();
    let fmt = |v: &[usize]| {
        v.iter()
            .map(|c| format!("{c:>4}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    comparison_table(
        "Fig. 2 — constant vs dynamic thresholding (events per frame)",
        &[
            Row::new(
                "ATC high Vth (B)",
                "misses weak frames",
                fmt(&r.atc_high_per_frame),
            ),
            Row::new(
                "ATC low Vth (C)",
                "floods strong frames",
                fmt(&r.atc_low_per_frame),
            ),
            Row::new("D-ATC (D)", "balanced", fmt(&r.datc_per_frame)),
            Row::new("symbols/event (E)", "5", r.symbols_per_event.to_string()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_threshold_misses_weak_contractions() {
        let r = run();
        // the weak contraction frames should see (almost) nothing under
        // the high fixed threshold while D-ATC still fires there
        let weak_frame_atc: usize = r.atc_high_per_frame[0];
        let weak_frame_datc: usize = r.datc_per_frame[0];
        assert!(
            weak_frame_datc > 5 * weak_frame_atc.max(1),
            "atc {weak_frame_atc} datc {weak_frame_datc}"
        );
    }

    #[test]
    fn low_threshold_floods() {
        let r = run();
        let total_low: usize = r.atc_low_per_frame.iter().sum();
        let total_datc: usize = r.datc_per_frame.iter().sum();
        assert!(
            total_low as f64 > 1.5 * total_datc as f64,
            "low {total_low} datc {total_datc}"
        );
    }

    #[test]
    fn datc_firing_is_more_balanced_than_atc() {
        let r = run();
        let active = |v: &[usize]| -> Vec<usize> { v.to_vec() };
        let b_datc = Fig2Result::balance(&active(&r.datc_per_frame));
        let b_atc = Fig2Result::balance(&active(&r.atc_high_per_frame));
        assert!(b_datc < b_atc, "datc CV {b_datc} vs atc CV {b_atc}");
    }

    #[test]
    fn event_pattern_is_five_symbols() {
        assert_eq!(run().symbols_per_event, 5);
    }

    #[test]
    fn report_renders() {
        let s = report();
        assert!(s.contains("Fig. 2"));
        assert!(s.contains("D-ATC"));
    }
}
