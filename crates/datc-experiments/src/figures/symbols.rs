//! Sec. III-B — the on-air symbol-count bullet list.
//!
//! Paper numbers for one 20 s recording:
//!
//! * standard packet-based system — 12 × 50 000 = **600 000** symbols;
//! * ATC (Vth = 0.3 V) — **3 183** event symbols;
//! * ATC (Vth = 0.2 V) — **5 821** event symbols;
//! * D-ATC — 3 724 × 5 = **18 620** event symbols.

use crate::reference::{ReferenceCase, ATC_VTH_FIG3, ATC_VTH_FIG6};
use crate::report::{comparison_table, Row};
use datc_uwb::energy::{compare_schemes, TxEnergyModel};
use datc_uwb::modulator::{pulse_count, symbolize_events};
use datc_uwb::packet::PacketTx;
use serde::Serialize;

/// Result of the symbol-count comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SymbolsResult {
    /// Payload-only packet symbols (the paper's 600 000).
    pub packet_symbols: u64,
    /// Full-packet symbols including header/SFD/ID/CRC overhead.
    pub packet_symbols_with_overhead: u64,
    /// ATC@0.3 V symbols (1 per event).
    pub atc_high_symbols: u64,
    /// ATC@0.2 V symbols.
    pub atc_low_symbols: u64,
    /// D-ATC symbols (5 per event).
    pub datc_symbols: u64,
    /// D-ATC radiated pulses (OOK ones only — what TX energy scales with).
    pub datc_pulses: u64,
    /// Average TX power per scheme, watts: `[packet, ATC@0.3, D-ATC]`.
    pub tx_power_w: [f64; 3],
}

/// Runs the comparison on the canonical reference case.
pub fn run() -> SymbolsResult {
    let case = ReferenceCase::fig3_reference();
    let n_samples = case.rectified.len() as u64;
    let duration = case.rectified.duration();

    let packet = PacketTx::baseline();
    let (payload_only, with_overhead) = packet.symbol_counts(n_samples);

    let (atc_high, _) = case.run_atc(ATC_VTH_FIG3);
    let (atc_low, _) = case.run_atc(ATC_VTH_FIG6);
    let (datc, _) = case.run_datc();

    let patterns = symbolize_events(&datc.events, 4);
    let datc_pulses = pulse_count(&patterns);
    let datc_symbols = datc.events.symbol_count(4);
    let pulse_fraction = datc_pulses as f64 / datc_symbols.max(1) as f64;

    let energy = compare_schemes(
        &TxEnergyModel::paper_class(),
        duration,
        payload_only,
        atc_high.len() as u64,
        datc_symbols,
        pulse_fraction,
    );

    SymbolsResult {
        packet_symbols: payload_only,
        packet_symbols_with_overhead: with_overhead,
        atc_high_symbols: atc_high.symbol_count(4),
        atc_low_symbols: atc_low.symbol_count(4),
        datc_symbols,
        datc_pulses,
        tx_power_w: [
            energy[0].average_power_w,
            energy[1].average_power_w,
            energy[2].average_power_w,
        ],
    }
}

/// Text report for the symbol comparison.
pub fn report() -> String {
    let r = run();
    comparison_table(
        "Sec. III-B — on-air symbols per 20 s recording",
        &[
            Row::new(
                "packet (12-bit ADC)",
                "600000",
                r.packet_symbols.to_string(),
            ),
            Row::new(
                "packet w/ overhead",
                "—",
                r.packet_symbols_with_overhead.to_string(),
            ),
            Row::new("ATC @0.3 V", "3183", r.atc_high_symbols.to_string()),
            Row::new("ATC @0.2 V", "5821", r.atc_low_symbols.to_string()),
            Row::new("D-ATC (×5)", "18620", r.datc_symbols.to_string()),
            Row::new(
                "TX power packet/ATC/D-ATC",
                "≫ / low / low",
                format!(
                    "{:.0} / {:.0} / {:.0} nW",
                    r.tx_power_w[0] * 1e9,
                    r.tx_power_w[1] * 1e9,
                    r.tx_power_w[2] * 1e9
                ),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_matches_paper_exactly() {
        let r = run();
        assert_eq!(r.packet_symbols, 600_000);
        assert_eq!(r.packet_symbols_with_overhead, 50_000 * 44);
    }

    #[test]
    fn scheme_ordering_matches_paper() {
        // packet ≫ D-ATC > ATC@0.2 > ATC@0.3 in symbols
        let r = run();
        assert!(r.packet_symbols > 10 * r.datc_symbols);
        assert!(r.datc_symbols > r.atc_low_symbols);
        assert!(r.atc_low_symbols > r.atc_high_symbols);
    }

    #[test]
    fn datc_symbols_are_five_per_event() {
        let r = run();
        assert_eq!(r.datc_symbols % 5, 0);
    }

    #[test]
    fn pulse_count_is_between_one_and_five_per_event() {
        let r = run();
        let events = r.datc_symbols / 5;
        assert!(r.datc_pulses >= events, "at least the marker per event");
        assert!(r.datc_pulses <= 5 * events);
    }

    #[test]
    fn packet_tx_burns_most_power() {
        let r = run();
        assert!(r.tx_power_w[0] > 5.0 * r.tx_power_w[2]);
        assert!(r.tx_power_w[2] < 1e-6, "D-ATC TX must stay sub-µW");
    }

    #[test]
    fn report_renders() {
        let s = report();
        assert!(s.contains("600000"));
        assert!(s.contains("D-ATC"));
    }
}
