//! Per-figure experiment runners (see crate docs for the mapping).

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod symbols;
pub mod table1;
pub mod workloads;
