//! Fig. 7 — trade-off between transmitted events and correlation.
//!
//! For four corpus patterns, ATC's threshold is swept; each `Vth` yields
//! an (events, correlation) point. D-ATC contributes one point per
//! pattern. Paper conclusion: "D-ATC is more stable from the transmitted
//! events viewpoint and maintains performance figures close to the real
//! sEMG signal".

use crate::reference::ReferenceCase;
use crate::report::{comparison_table, Row};
use datc_signal::dataset::{Dataset, DatasetConfig};
use serde::Serialize;

/// One point on an ATC sweep curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// The fixed threshold (volts).
    pub vth: f64,
    /// Events fired over the recording.
    pub events: usize,
    /// Correlation (%).
    pub correlation: f64,
}

/// Trade-off data for one pattern.
#[derive(Debug, Clone, Serialize)]
pub struct PatternTradeoff {
    /// Pattern id.
    pub id: usize,
    /// Subject MVC amplitude (volts).
    pub mvc_gain_v: f64,
    /// The ATC sweep curve.
    pub atc_curve: Vec<SweepPoint>,
    /// D-ATC's single operating point.
    pub datc_point: SweepPoint,
}

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// One trade-off per selected pattern.
    pub patterns: Vec<PatternTradeoff>,
}

/// The thresholds swept for the ATC curves (volts).
pub const VTH_SWEEP: [f64; 8] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5];

/// The four corpus patterns used (fixed ids standing in for the paper's
/// "randomly selected" four — chosen to span the subject gain range).
pub const PATTERN_IDS: [usize; 4] = [0, 5, 10, 19];

/// Runs the trade-off sweep.
pub fn run() -> Fig7Result {
    let dataset = Dataset::new(DatasetConfig::default());
    let patterns = PATTERN_IDS
        .iter()
        .map(|&id| {
            let pattern = dataset.pattern(id);
            let case = ReferenceCase::from_rectified(pattern.rectified());
            let atc_curve = VTH_SWEEP
                .iter()
                .map(|&vth| {
                    let (ev, corr) = case.run_atc(vth);
                    SweepPoint {
                        vth,
                        events: ev.len(),
                        correlation: corr,
                    }
                })
                .collect();
            let (datc, corr) = case.run_datc();
            PatternTradeoff {
                id,
                mvc_gain_v: pattern.subject.mvc_gain_v,
                atc_curve,
                datc_point: SweepPoint {
                    vth: f64::NAN, // dynamic — no single threshold
                    events: datc.events.len(),
                    correlation: corr,
                },
            }
        })
        .collect();
    Fig7Result { patterns }
}

impl Fig7Result {
    /// Spread (max/min) of D-ATC event counts across patterns vs the
    /// same spread for ATC at a fixed mid threshold — the stability claim.
    pub fn event_spreads(&self) -> (f64, f64) {
        let datc: Vec<f64> = self
            .patterns
            .iter()
            .map(|p| p.datc_point.events.max(1) as f64)
            .collect();
        let atc: Vec<f64> = self
            .patterns
            .iter()
            .map(|p| p.atc_curve[5].events.max(1) as f64) // Vth = 0.3
            .collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) / v.iter().cloned().fold(f64::MAX, f64::min)
        };
        (spread(&datc), spread(&atc))
    }
}

/// Text report for Fig. 7.
pub fn report() -> String {
    let r = run();
    let mut rows = Vec::new();
    for p in &r.patterns {
        let best_atc = p
            .atc_curve
            .iter()
            .max_by(|a, b| a.correlation.partial_cmp(&b.correlation).unwrap())
            .expect("sweep is non-empty");
        rows.push(Row::new(
            format!("pattern {:>3} (gain {:.2} V)", p.id, p.mvc_gain_v),
            "D-ATC near ATC knee",
            format!(
                "D-ATC {} ev @ {:.1} % | best ATC {} ev @ {:.1} % (Vth={:.2})",
                p.datc_point.events,
                p.datc_point.correlation,
                best_atc.events,
                best_atc.correlation,
                best_atc.vth
            ),
        ));
    }
    let (datc_spread, atc_spread) = r.event_spreads();
    rows.push(Row::new(
        "event spread (max/min)",
        "D-ATC ≪ ATC",
        format!("D-ATC {datc_spread:.1}× vs ATC {atc_spread:.1}×"),
    ));
    comparison_table("Fig. 7 — events vs correlation trade-off", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atc_event_count_decreases_with_threshold() {
        // Crossing counts decay with the threshold in expectation; a few
        // counts of wiggle are possible at adjacent levels on sampled
        // noise, so allow 5 % slack.
        let r = run();
        for p in &r.patterns {
            for w in p.atc_curve.windows(2) {
                assert!(
                    (w[1].events as f64) <= w[0].events as f64 * 1.10 + 10.0,
                    "pattern {}: events rose with Vth ({} -> {})",
                    p.id,
                    w[0].events,
                    w[1].events
                );
            }
            // end-to-end the decay must be strong
            assert!(
                p.atc_curve.last().unwrap().events < p.atc_curve.first().unwrap().events.max(1),
                "pattern {}: no overall decay",
                p.id
            );
        }
    }

    #[test]
    fn datc_event_count_is_more_stable_across_patterns() {
        let r = run();
        let (datc_spread, atc_spread) = r.event_spreads();
        assert!(
            datc_spread < atc_spread,
            "D-ATC spread {datc_spread:.2} vs ATC {atc_spread:.2}"
        );
    }

    #[test]
    fn datc_correlation_close_to_best_atc() {
        let r = run();
        for p in &r.patterns {
            let best = p
                .atc_curve
                .iter()
                .map(|s| s.correlation)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                p.datc_point.correlation > best - 15.0,
                "pattern {}: datc {:.1} far below best atc {:.1}",
                p.id,
                p.datc_point.correlation,
                best
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = report();
        assert!(s.contains("Fig. 7"));
        assert!(s.contains("D-ATC"));
    }
}
