//! Table I — simulation and synthesis results of the DTC.
//!
//! Paper: 1.8 V, 2 kHz clock, **512 cells, 12 ports, 11 700 µm²,
//! ~70 nW** dynamic power, in a high-voltage 0.18 µm CMOS process.
//!
//! Reproduced by mapping the structural DTC netlist onto the
//! [`datc_rtl::cells::CellLibrary`] model, then reporting (a) the
//! no-trace default-activity power estimate (the paper's flow) and (b)
//! power from switching activity measured while the gate-level DTC
//! digests the Fig. 3 reference recording.

use crate::reference::ReferenceCase;
use crate::report::{comparison_table, Row};
use datc_core::comparator::Comparator;
use datc_core::config::DatcConfig;
use datc_core::dac::Dac;
use datc_rtl::cells::CellLibrary;
use datc_rtl::power::{PowerReport, DEFAULT_ACTIVITY};
use datc_rtl::synth::SynthReport;
use datc_rtl::DtcRtl;
use serde::Serialize;

/// Result of the Table I reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Synthesis-style static report.
    pub synth: SynthReport,
    /// Default-activity power estimate (the paper's methodology).
    pub power_estimated: PowerReport,
    /// Power from measured activity on the reference recording.
    pub power_measured: PowerReport,
    /// Events the gate-level DTC produced on the reference recording
    /// (sanity tie-in with Fig. 3).
    pub rtl_events: usize,
}

/// Runs the Table I flow. `workload_ticks` bounds the measured-activity
/// simulation (40 000 = the full 20 s recording at 2 kHz).
pub fn run(workload_ticks: usize) -> Table1Result {
    let config = DatcConfig::paper();
    let library = CellLibrary::hv018();
    let mut rtl = DtcRtl::new(config).expect("paper config is valid");
    let synth = SynthReport::analyze(rtl.netlist(), &library);
    let power_estimated = PowerReport::from_default_activity(
        rtl.netlist(),
        &library,
        config.clock_hz,
        DEFAULT_ACTIVITY,
    );

    // Drive the gate-level DTC with the real comparator bit stream from
    // the Fig. 3 recording (comparator closed around the RTL's own
    // threshold codes, exactly like the chip).
    let case = ReferenceCase::fig3_reference();
    let dac = Dac::paper();
    let mut comp = Comparator::ideal();
    let fs = case.rectified.sample_rate();
    let n = case.rectified.len();
    let mut vth_code = 1u8;
    let mut rtl_events = 0usize;
    for k in 0..workload_ticks {
        let t = k as f64 / config.clock_hz;
        let idx = ((t * fs) as usize).min(n - 1);
        let vth = dac.voltage(u16::from(vth_code)).expect("4-bit code");
        let d_in = comp.compare(case.rectified.samples()[idx], vth);
        let step = rtl.step(d_in);
        vth_code = step.set_vth;
        if step.event {
            rtl_events += 1;
        }
    }
    let power_measured = PowerReport::from_simulation(rtl.simulator(), &library, config.clock_hz);

    Table1Result {
        synth,
        power_estimated,
        power_measured,
        rtl_events,
    }
}

/// Text report for Table I (runs the full 20 s workload).
pub fn report() -> String {
    let r = run(40_000);
    comparison_table(
        "Table I — DTC simulation and synthesis results",
        &[
            Row::new("power supply", "1.8 V", format!("{} V", r.synth.supply_v)),
            Row::new("system clock", "2 kHz", "2 kHz"),
            Row::new("number of cells", "512", r.synth.cell_count.to_string()),
            Row::new("number of ports", "12", r.synth.total_ports.to_string()),
            Row::new(
                "core area",
                "11700 um^2",
                format!("{:.0} um^2", r.synth.core_area_um2),
            ),
            Row::new(
                "dynamic power (est.)",
                "~70 nW",
                format!("{:.0} nW", r.power_estimated.dynamic_w * 1e9),
            ),
            Row::new(
                "dynamic power (measured)",
                "—",
                format!("{:.1} nW", r.power_measured.dynamic_w * 1e9),
            ),
            Row::new("leakage", "—", format!("{:.2} nW", r.synth.leakage_w * 1e9)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let r = run(4_000); // 2 s workload keeps the test quick
                            // cells: same decade as 512
        assert!((200..3000).contains(&r.synth.cell_count));
        // ports: near 12
        assert!((8..=20).contains(&r.synth.total_ports));
        // area: same decade as 11 700 µm²
        assert!((4_000.0..60_000.0).contains(&r.synth.core_area_um2));
        // estimated dynamic power: tens of nW, near the paper's ~70
        let est = r.power_estimated.dynamic_w * 1e9;
        assert!((30.0..150.0).contains(&est), "estimate {est} nW");
        // measured on real workload: below the default-activity estimate
        assert!(r.power_measured.dynamic_w < r.power_estimated.dynamic_w);
    }

    #[test]
    fn rtl_produces_events_on_the_reference_signal() {
        let r = run(4_000);
        assert!(r.rtl_events > 50, "events {}", r.rtl_events);
    }

    #[test]
    fn report_renders() {
        // tiny workload for speed
        let r = run(500);
        assert!(r.synth.cell_count > 0);
        let s = comparison_table(
            "t",
            &[Row::new("cells", "512", r.synth.cell_count.to_string())],
        );
        assert!(s.contains("cells"));
    }
}
