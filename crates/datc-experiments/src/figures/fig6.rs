//! Fig. 6 — matching ATC's correlation to D-ATC by lowering its
//! threshold.
//!
//! Paper: with `Vth = 0.2 V` the same signal yields a correlation on par
//! with D-ATC's, but at **5 821 events — 56 % more than D-ATC's 3 724**.
//! Message: adaptive thresholding buys correlation per event.

use crate::reference::{ReferenceCase, ATC_VTH_FIG3, ATC_VTH_FIG6};
use crate::report::{comparison_table, Row};
use serde::Serialize;

/// Result of the Fig. 6 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Result {
    /// ATC events at the lowered threshold (0.2 V).
    pub atc_low_events: usize,
    /// ATC correlation at the lowered threshold (%).
    pub atc_low_correlation: f64,
    /// ATC events at the Fig. 3 threshold (0.3 V).
    pub atc_high_events: usize,
    /// D-ATC events.
    pub datc_events: usize,
    /// D-ATC correlation (%).
    pub datc_correlation: f64,
    /// ATC@0.2 V event surplus over D-ATC (%); the paper reports ≈ +56 %.
    pub atc_low_surplus_pct: f64,
}

/// Runs Fig. 6 on the canonical reference case.
pub fn run() -> Fig6Result {
    let case = ReferenceCase::fig3_reference();
    let (atc_low, atc_low_corr) = case.run_atc(ATC_VTH_FIG6);
    let (atc_high, _) = case.run_atc(ATC_VTH_FIG3);
    let (datc, datc_corr) = case.run_datc();
    Fig6Result {
        atc_low_events: atc_low.len(),
        atc_low_correlation: atc_low_corr,
        atc_high_events: atc_high.len(),
        datc_events: datc.events.len(),
        datc_correlation: datc_corr,
        atc_low_surplus_pct: (atc_low.len() as f64 / datc.events.len().max(1) as f64 - 1.0) * 100.0,
    }
}

/// Text report for Fig. 6.
pub fn report() -> String {
    let r = run();
    comparison_table(
        "Fig. 6 — ATC with lowered Vth=0.2 V vs D-ATC",
        &[
            Row::new("ATC@0.2 events", "5821", r.atc_low_events.to_string()),
            Row::new(
                "ATC@0.2 correlation",
                "~96 % (matches D-ATC)",
                format!("{:.1} %", r.atc_low_correlation),
            ),
            Row::new("D-ATC events", "3724", r.datc_events.to_string()),
            Row::new(
                "D-ATC correlation",
                "96.41 %",
                format!("{:.1} %", r.datc_correlation),
            ),
            Row::new(
                "ATC@0.2 event surplus",
                "+56 %",
                format!("{:+.0} %", r.atc_low_surplus_pct),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_threshold_matches_datc_correlation() {
        let r = run();
        assert!(
            (r.atc_low_correlation - r.datc_correlation).abs() < 6.0,
            "ATC@0.2 {:.1} vs D-ATC {:.1}",
            r.atc_low_correlation,
            r.datc_correlation
        );
    }

    #[test]
    fn matched_correlation_costs_more_events() {
        // the paper's point: equal correlation, many more pulses
        let r = run();
        assert!(
            r.atc_low_events > r.datc_events,
            "ATC@0.2 {} vs D-ATC {}",
            r.atc_low_events,
            r.datc_events
        );
        assert!(
            r.atc_low_surplus_pct > 15.0,
            "surplus only {:+.0} %",
            r.atc_low_surplus_pct
        );
    }

    #[test]
    fn lowering_threshold_raises_event_count() {
        let r = run();
        assert!(r.atc_low_events > r.atc_high_events);
    }

    #[test]
    fn report_renders() {
        let s = report();
        assert!(s.contains("5821"));
        assert!(s.contains("+56 %"));
    }
}
