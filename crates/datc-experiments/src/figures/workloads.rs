//! Workloads — reconstruction accuracy on physiological motor-pool
//! trajectories.
//!
//! Not a paper artefact: the DATE 2015 evaluation uses grip-protocol
//! recordings whose force trajectory is slow and plateau-heavy. The
//! Fuglevand motor-pool scenarios (`datc_signal::motor`) stress the
//! regimes that protocol never visits — rest-dominated ballistic bursts,
//! fatigue-compensating drives, continuous tracking — so this runner
//! answers the question the paper leaves open: does the D-ATC link's
//! reconstruction quality survive physiologically bursty inputs?
//!
//! Each scenario is scored twice: against the ARV envelope of the
//! transmitted sEMG (the paper's convention, shared with every other
//! figure) and against the motor pool's summed twitch-force ground
//! truth — a reference no recorded-signal evaluation can have.
//!
//! What the sweep shows (and the tests pin):
//!
//! * **ramp-and-hold / fatigue-ramp** reconstruct at the paper's ≈96 %
//!   level — plateau-heavy drives are exactly what the hybrid receiver
//!   was tuned for;
//! * **sine tracking** scores high against force but poorly against
//!   ARV: the 0.25 s ARV window phase-lags a periodic envelope by more
//!   than the scorer's ±0.3 s lag search can recover, so the force
//!   ground truth is the honest reference there;
//! * **ballistic** is the breakdown regime: rest-dominated traffic
//!   leaves ~15 events/s and the paper's smoothing window smears the
//!   0.15 s bursts, so correlation collapses against *both* references.
//!   A receiver change that fixes this should flip the pinned ordering
//!   below deliberately, not silently.

use crate::reference::{ReferenceCase, MAX_LAG_S, RECON_FS};
use datc_core::config::DatcConfig;
use datc_core::datc::DatcEncoder;
use datc_rx::pipeline::Link;
use datc_rx::reconstruct::HybridReconstructor;
use datc_signal::motor::{MotorWorkload, WorkloadScenario};
use serde::Serialize;
use std::fmt::Write as _;

/// Scores for one workload scenario through the D-ATC link.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadRow {
    /// Scenario name (`WorkloadScenario::name`).
    pub scenario: &'static str,
    /// Transmitted D-ATC events.
    pub events: usize,
    /// Mean event rate over the run (events/s).
    pub events_per_s: f64,
    /// Correlation vs the ARV envelope of the transmitted sEMG (%).
    pub corr_arv_pct: f64,
    /// Correlation vs the motor pool's twitch-force ground truth (%).
    pub corr_force_pct: f64,
}

/// Runs every [`WorkloadScenario`] through the paper-configuration
/// D-ATC link (hybrid receiver) for `seconds` of signal and scores the
/// reconstruction against both references.
pub fn run(seconds: f64) -> Vec<WorkloadRow> {
    let fs = 2500.0;
    let link = Link::builder()
        .encoder(DatcEncoder::new(DatcConfig::paper()))
        .reconstructor(HybridReconstructor::paper())
        .output_fs(RECON_FS)
        .build();
    WorkloadScenario::all()
        .into_iter()
        .map(|scenario| {
            let motor = MotorWorkload::new(scenario, fs).run(seconds, 42);
            let case = ReferenceCase::from_rectified(motor.semg.to_scaled(0.45).to_rectified());
            let run = link.run(&case.rectified);
            let score = |reference| {
                run.score(reference, MAX_LAG_S)
                    .map(|r| r.percent)
                    .unwrap_or(0.0)
            };
            WorkloadRow {
                scenario: scenario.name(),
                events: run.transmission.encoded.events.len(),
                events_per_s: run.transmission.encoded.events.len() as f64 / seconds,
                corr_arv_pct: score(&case.arv),
                corr_force_pct: score(&motor.force),
            }
        })
        .collect()
}

/// Text report for the workload sweep.
pub fn report(seconds: f64) -> String {
    let rows = run(seconds);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Workloads — D-ATC reconstruction on motor-pool trajectories ({seconds:.0} s) =="
    );
    let _ = writeln!(
        out,
        "{:<14}  {:>7}  {:>9}  {:>9}  {:>11}",
        "scenario", "events", "events/s", "corr ARV", "corr force"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<14}  {:>7}  {:>9.1}  {:>7.1} %  {:>9.1} %",
            r.scenario, r.events, r.events_per_s, r.corr_arv_pct, r.corr_force_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_scenarios_hold_the_papers_accuracy() {
        let rows = run(6.0);
        let get = |n: &str| rows.iter().find(|r| r.scenario == n).unwrap();
        let ramp = get("ramp_hold");
        assert!(
            ramp.corr_arv_pct > 90.0 && ramp.corr_force_pct > 90.0,
            "ramp_hold fell below the paper's regime: ARV {:.1} %, force {:.1} %",
            ramp.corr_arv_pct,
            ramp.corr_force_pct
        );
        assert!(
            get("fatigue_ramp").corr_arv_pct > 85.0,
            "fatigue_ramp ARV {:.1} %",
            get("fatigue_ramp").corr_arv_pct
        );
    }

    #[test]
    fn sine_tracking_needs_the_force_reference() {
        // The ARV window phase-lags a periodic envelope beyond the lag
        // search; the force ground truth shows the link actually works.
        let rows = run(6.0);
        let sine = rows.iter().find(|r| r.scenario == "sine_tracking").unwrap();
        assert!(
            sine.corr_force_pct > 80.0,
            "sine_tracking vs force only {:.1} %",
            sine.corr_force_pct
        );
        assert!(
            sine.corr_force_pct > sine.corr_arv_pct,
            "force {:.1} % should beat the lag-biased ARV {:.1} %",
            sine.corr_force_pct,
            sine.corr_arv_pct
        );
    }

    #[test]
    fn ballistic_is_the_documented_breakdown_regime() {
        // Rest-dominated bursts defeat the paper's smoothing window. If
        // a future receiver fixes this, update the module docs and flip
        // this pin on purpose.
        let rows = run(6.0);
        let get = |n: &str| rows.iter().find(|r| r.scenario == n).unwrap();
        assert!(
            get("ballistic").corr_force_pct < get("ramp_hold").corr_force_pct - 30.0,
            "ballistic {:.1} % no longer far below ramp_hold {:.1} % — breakdown fixed?",
            get("ballistic").corr_force_pct,
            get("ramp_hold").corr_force_pct
        );
    }

    #[test]
    fn ballistic_is_the_sparsest_scenario() {
        let rows = run(6.0);
        let ballistic = rows.iter().find(|r| r.scenario == "ballistic").unwrap();
        for r in &rows {
            if r.scenario != "ballistic" {
                assert!(
                    ballistic.events < r.events,
                    "ballistic {} >= {} {}",
                    ballistic.events,
                    r.scenario,
                    r.events
                );
            }
        }
    }

    #[test]
    fn report_renders_all_scenarios() {
        let s = report(6.0);
        for scenario in WorkloadScenario::all() {
            assert!(s.contains(scenario.name()), "missing {}", scenario.name());
        }
    }
}
