//! Fig. 3 — the reference 20 s / 50 000-sample recording: constant
//! (Vth = 0.3 V) vs dynamic thresholding, reconstructions and their
//! correlations.
//!
//! Paper values: ATC@0.3 V → 3 183 events, ≈ 91.5 % correlation; D-ATC →
//! 3 724 events (+17 %), 96.41 % correlation.

use crate::reference::{ReferenceCase, ATC_VTH_FIG3};
use crate::report::{comparison_table, downsample, sparkline, Row};
use serde::Serialize;

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// ATC events at Vth = 0.3 V.
    pub atc_events: usize,
    /// ATC correlation (%).
    pub atc_correlation: f64,
    /// D-ATC events.
    pub datc_events: usize,
    /// D-ATC correlation (%).
    pub datc_correlation: f64,
    /// D-ATC event surplus over ATC (%); the paper reports ≈ +17 %.
    pub datc_event_surplus_pct: f64,
    /// The dynamic threshold trajectory (volts, one per DTC tick),
    /// downsampled to 64 points for reporting.
    pub vth_trace_v: Vec<f64>,
}

/// Runs Fig. 3 on the canonical reference case.
pub fn run() -> Fig3Result {
    run_on(&ReferenceCase::fig3_reference())
}

/// Runs Fig. 3 on a supplied case (used by tests and ablations).
pub fn run_on(case: &ReferenceCase) -> Fig3Result {
    let (atc, atc_corr) = case.run_atc(ATC_VTH_FIG3);
    let (datc, datc_corr) = case.run_datc();
    let surplus = (datc.events.len() as f64 / atc.len().max(1) as f64 - 1.0) * 100.0;
    Fig3Result {
        atc_events: atc.len(),
        atc_correlation: atc_corr,
        datc_events: datc.events.len(),
        datc_correlation: datc_corr,
        datc_event_surplus_pct: surplus,
        vth_trace_v: downsample(&datc.vth_volt_trace, 64),
    }
}

/// Text report for Fig. 3.
pub fn report() -> String {
    let r = run();
    let mut out = comparison_table(
        "Fig. 3 — reference signal: ATC (Vth=0.3 V) vs D-ATC",
        &[
            Row::new("ATC events", "3183", r.atc_events.to_string()),
            Row::new(
                "ATC correlation",
                "~91.5 %",
                format!("{:.1} %", r.atc_correlation),
            ),
            Row::new("D-ATC events", "3724", r.datc_events.to_string()),
            Row::new(
                "D-ATC correlation",
                "96.41 %",
                format!("{:.1} %", r.datc_correlation),
            ),
            Row::new(
                "D-ATC event surplus",
                "+17 %",
                format!("{:+.0} %", r.datc_event_surplus_pct),
            ),
        ],
    );
    out.push_str(&format!(
        "dynamic Vth trace: {}\n",
        sparkline(&r.vth_trace_v)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datc_correlates_higher_than_atc() {
        let r = run();
        assert!(
            r.datc_correlation > r.atc_correlation,
            "D-ATC {} vs ATC {}",
            r.datc_correlation,
            r.atc_correlation
        );
        assert!(r.datc_correlation > 90.0, "D-ATC {}", r.datc_correlation);
    }

    #[test]
    fn datc_fires_more_events_like_the_paper() {
        // paper: +17 %; shape criterion: positive surplus below +60 %
        let r = run();
        assert!(
            r.datc_event_surplus_pct > 0.0 && r.datc_event_surplus_pct < 60.0,
            "surplus {:.1} %",
            r.datc_event_surplus_pct
        );
    }

    #[test]
    fn event_counts_are_thousands_over_20s() {
        let r = run();
        assert!((500..8000).contains(&r.atc_events), "atc {}", r.atc_events);
        assert!(
            (500..8000).contains(&r.datc_events),
            "datc {}",
            r.datc_events
        );
    }

    #[test]
    fn vth_trace_spans_multiple_dac_levels() {
        let r = run();
        let min = r.vth_trace_v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.vth_trace_v.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.1, "threshold barely moved: {min}..{max}");
    }

    #[test]
    fn report_renders() {
        let s = report();
        assert!(s.contains("96.41"));
        assert!(s.contains("D-ATC events"));
    }
}
