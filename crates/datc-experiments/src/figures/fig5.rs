//! Fig. 5 — correlation across the full corpus.
//!
//! Paper: over 190 patterns, constant thresholding (Vth = 0.3 V) spans
//! **47 %–95.2 %** while D-ATC stays within **85 %–98 %** — the paper's
//! robustness headline.

use crate::reference::{ReferenceCase, ATC_VTH_FIG3};
use crate::report::{comparison_table, Row};
use datc_signal::dataset::{Dataset, DatasetConfig};
use datc_signal::stats::BatchSummary;
use serde::Serialize;

/// Per-pattern scores.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PatternScore {
    /// Pattern id.
    pub id: usize,
    /// Subject MVC amplitude (volts).
    pub mvc_gain_v: f64,
    /// ATC correlation (%).
    pub atc: f64,
    /// D-ATC correlation (%).
    pub datc: f64,
}

/// Result of the Fig. 5 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// Per-pattern scores.
    pub scores: Vec<PatternScore>,
    /// ATC batch summary (min/max/mean/std of correlation %).
    pub atc_summary: BatchSummary,
    /// D-ATC batch summary.
    pub datc_summary: BatchSummary,
}

/// Runs the sweep over `n_patterns` of the corpus (pass 190 for the
/// paper-sized run; tests use a subset).
pub fn run(n_patterns: usize) -> Fig5Result {
    let config = DatasetConfig {
        n_patterns,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::new(config);
    let mut scores = Vec::with_capacity(n_patterns);
    for pattern in dataset.iter() {
        let case = ReferenceCase::from_rectified(pattern.rectified());
        let (_, atc) = case.run_atc(ATC_VTH_FIG3);
        let (_, datc) = case.run_datc();
        scores.push(PatternScore {
            id: pattern.id,
            mvc_gain_v: pattern.subject.mvc_gain_v,
            atc,
            datc,
        });
    }
    let atc_vals: Vec<f64> = scores.iter().map(|s| s.atc).collect();
    let datc_vals: Vec<f64> = scores.iter().map(|s| s.datc).collect();
    Fig5Result {
        atc_summary: BatchSummary::of(&atc_vals),
        datc_summary: BatchSummary::of(&datc_vals),
        scores,
    }
}

/// Text report for Fig. 5 (full corpus).
pub fn report(n_patterns: usize) -> String {
    let r = run(n_patterns);
    comparison_table(
        &format!("Fig. 5 — correlation across {n_patterns} patterns"),
        &[
            Row::new(
                "ATC range",
                "47 – 95.2 %",
                format!("{:.1} – {:.1} %", r.atc_summary.min, r.atc_summary.max),
            ),
            Row::new(
                "D-ATC range",
                "85 – 98 %",
                format!("{:.1} – {:.1} %", r.datc_summary.min, r.datc_summary.max),
            ),
            Row::new(
                "ATC mean ± std",
                "—",
                format!("{:.1} ± {:.1} %", r.atc_summary.mean, r.atc_summary.std_dev),
            ),
            Row::new(
                "D-ATC mean ± std",
                "—",
                format!(
                    "{:.1} ± {:.1} %",
                    r.datc_summary.mean, r.datc_summary.std_dev
                ),
            ),
            Row::new(
                "spread ratio (ATC/D-ATC)",
                "~3.7",
                format!(
                    "{:.1}",
                    r.atc_summary.spread() / r.datc_summary.spread().max(1e-9)
                ),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // 24 patterns (3 per subject) keeps the test fast while covering the
    // full gain range; the bench and example run all 190.
    const N: usize = 24;

    #[test]
    fn datc_is_more_robust_than_atc() {
        let r = run(N);
        assert!(
            r.datc_summary.spread() < r.atc_summary.spread(),
            "D-ATC spread {:.1} vs ATC spread {:.1}",
            r.datc_summary.spread(),
            r.atc_summary.spread()
        );
        assert!(
            r.datc_summary.min > r.atc_summary.min,
            "D-ATC min {:.1} vs ATC min {:.1}",
            r.datc_summary.min,
            r.atc_summary.min
        );
    }

    #[test]
    fn datc_floor_is_high() {
        // paper floor: 85 %; shape criterion ≥ 75 % on the synthetic corpus
        let r = run(N);
        assert!(
            r.datc_summary.min > 75.0,
            "D-ATC floor {:.1}",
            r.datc_summary.min
        );
    }

    #[test]
    fn atc_fails_on_weak_subjects() {
        let r = run(N);
        // the weakest-subject patterns should drag the ATC minimum well
        // below its mean
        assert!(
            r.atc_summary.min < r.atc_summary.mean - 10.0,
            "ATC min {:.1} mean {:.1}",
            r.atc_summary.min,
            r.atc_summary.mean
        );
    }

    #[test]
    fn atc_weakness_correlates_with_gain() {
        let r = run(N);
        // on weak-gain subjects D-ATC should win on average, and never
        // lose badly
        let weak: Vec<&PatternScore> = r.scores.iter().filter(|s| s.mvc_gain_v < 0.25).collect();
        assert!(!weak.is_empty());
        let mean_gap = weak.iter().map(|s| s.datc - s.atc).sum::<f64>() / weak.len() as f64;
        assert!(
            mean_gap > 0.0,
            "mean D-ATC advantage {mean_gap:.1} on weak subjects"
        );
        for s in weak {
            assert!(
                s.datc > s.atc - 3.0,
                "pattern {} (gain {:.2}): datc {:.1} ≪ atc {:.1}",
                s.id,
                s.mvc_gain_v,
                s.datc,
                s.atc
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = report(8);
        assert!(s.contains("Fig. 5"));
        assert!(s.contains("D-ATC range"));
    }
}
