//! Ablations of the paper's design choices (DESIGN.md §5):
//! frame size, DAC resolution, history weights and receiver choice.
//!
//! The paper motivates several constants empirically ("determined …
//! based on a very large set of data", "different DAC resolution have
//! been examined"); these sweeps regenerate that evidence.

use crate::reference::{ReferenceCase, MAX_LAG_S, RECON_FS};
use crate::report::{comparison_table, Row};
use datc_core::config::{DatcConfig, FrameSize};
use datc_core::dac::Dac;
use datc_core::datc::DatcEncoder;
use datc_core::encoder::SpikeEncoder;
use datc_rx::metrics::evaluate;
use datc_rx::reconstruct::{
    HybridReconstructor, RateReconstructor, Reconstructor, RiceInversionReconstructor,
    ThresholdTrackReconstructor,
};
use serde::Serialize;

/// One ablation operating point.
#[derive(Debug, Clone, Serialize)]
pub struct AblationPoint {
    /// Human-readable setting label.
    pub setting: String,
    /// Events fired.
    pub events: usize,
    /// Correlation (%).
    pub correlation: f64,
    /// Symbols on air (events × pattern length).
    pub symbols: u64,
}

fn score(case: &ReferenceCase, config: DatcConfig) -> AblationPoint {
    let out = DatcEncoder::new(config).encode(&case.rectified);
    let recon = HybridReconstructor::new(
        ThresholdTrackReconstructor::new(
            Dac::new(config.dac_bits, config.vref).expect("validated config"),
            0.75,
        ),
        RateReconstructor::new(0.75),
        1.0,
    )
    .reconstruct(&out.events, RECON_FS);
    let corr = evaluate(&recon, &case.arv, MAX_LAG_S)
        .map(|r| r.percent)
        .unwrap_or(0.0);
    AblationPoint {
        setting: String::new(),
        events: out.events.len(),
        correlation: corr,
        symbols: out.events.symbol_count(config.dac_bits),
    }
}

/// Sweeps the programmable frame size (100/200/400/800 clock periods).
pub fn frame_size_sweep(case: &ReferenceCase) -> Vec<AblationPoint> {
    FrameSize::ALL
        .iter()
        .map(|&fs| {
            let mut p = score(case, DatcConfig::paper().with_frame_size(fs));
            p.setting = format!("frame {}", fs.len());
            p
        })
        .collect()
}

/// Sweeps DAC resolution 2–8 bits. The interval step is rescaled so the
/// top level stays at 0.48·frame (the paper's cap), keeping the sweeps
/// comparable.
pub fn dac_bits_sweep(case: &ReferenceCase) -> Vec<AblationPoint> {
    (2u8..=8)
        .map(|bits| {
            let mut cfg = DatcConfig::paper().with_dac_bits(bits);
            cfg.interval_step = 0.48 / (f64::from(cfg.max_code()));
            let mut p = score(case, cfg);
            p.setting = format!("{bits}-bit DAC");
            p
        })
        .collect()
}

/// Compares history weightings: the paper's (1, 0.65, 0.35) vs uniform vs
/// newest-frame-only.
pub fn weights_sweep(case: &ReferenceCase) -> Vec<AblationPoint> {
    [
        ("paper (1, .65, .35)", (1.0, 0.65, 0.35)),
        (
            "uniform (0.67, 0.67, 0.67)",
            (2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0),
        ),
        ("newest only (2, 0, 0)", (2.0, 0.0, 0.0)),
    ]
    .into_iter()
    .map(|(label, (w3, w2, w1))| {
        let mut p = score(case, DatcConfig::paper().with_weights(w3, w2, w1));
        p.setting = label.to_string();
        p
    })
    .collect()
}

/// Compares the four receivers on the same D-ATC stream.
pub fn reconstructor_sweep(case: &ReferenceCase) -> Vec<AblationPoint> {
    let out = DatcEncoder::new(DatcConfig::paper()).encode(&case.rectified);
    let nu0 = RiceInversionReconstructor::nu0_for_band(20.0, 450.0);
    let recons: Vec<(&str, Box<dyn Reconstructor>)> = vec![
        ("rate only", Box::new(RateReconstructor::default())),
        (
            "threshold track",
            Box::new(ThresholdTrackReconstructor::paper()),
        ),
        ("hybrid", Box::new(HybridReconstructor::paper())),
        (
            "Rice inversion",
            Box::new(RiceInversionReconstructor::new(Dac::paper(), nu0, 0.25)),
        ),
    ];
    recons
        .into_iter()
        .map(|(label, r)| {
            let recon = r.reconstruct(&out.events, RECON_FS);
            let corr = evaluate(&recon, &case.arv, MAX_LAG_S)
                .map(|r| r.percent)
                .unwrap_or(0.0);
            AblationPoint {
                setting: label.to_string(),
                events: out.events.len(),
                correlation: corr,
                symbols: out.events.symbol_count(4),
            }
        })
        .collect()
}

/// Extension experiment (beyond the paper): continuous force-tracking
/// tasks from the [`Mixed`](datc_signal::dataset::ProtocolMix::Mixed)
/// corpus. Slow oscillations smaller than one DAC LSB stress D-ATC's
/// threshold quantisation — a regime the paper's grip-only corpus never
/// enters. Returns `(atc %, datc %)` per tracking pattern.
pub fn tracking_stress(n_patterns: usize) -> Vec<(f64, f64)> {
    use datc_signal::dataset::{Dataset, DatasetConfig};
    let ds = Dataset::new(DatasetConfig {
        n_patterns,
        ..DatasetConfig::extended()
    });
    ds.iter()
        .filter(|p| p.id % 4 == 2) // the tracking patterns
        .map(|p| {
            let case = ReferenceCase::from_rectified(p.rectified());
            let (_, atc) = case.run_atc(0.3);
            let out = DatcEncoder::new(DatcConfig::paper()).encode(&case.rectified);
            let recon = HybridReconstructor::paper().reconstruct(&out.events, RECON_FS);
            let datc = evaluate(&recon, &case.arv, MAX_LAG_S)
                .map(|r| r.percent)
                .unwrap_or(0.0);
            (atc, datc)
        })
        .collect()
}

/// Text report over all ablations.
pub fn report() -> String {
    let case = ReferenceCase::fig3_reference();
    let mut out = String::new();
    for (title, points) in [
        ("Ablation — frame size", frame_size_sweep(&case)),
        ("Ablation — DAC resolution", dac_bits_sweep(&case)),
        ("Ablation — history weights", weights_sweep(&case)),
        ("Ablation — receiver", reconstructor_sweep(&case)),
    ] {
        let rows: Vec<Row> = points
            .iter()
            .map(|p| {
                Row::new(
                    p.setting.clone(),
                    "—",
                    format!("{} ev, {:.1} %, {} sym", p.events, p.correlation, p.symbols),
                )
            })
            .collect();
        out.push_str(&comparison_table(title, &rows));
        out.push('\n');
    }
    let stress = tracking_stress(12);
    let rows: Vec<Row> = stress
        .iter()
        .enumerate()
        .map(|(i, (atc, datc))| {
            Row::new(
                format!("tracking pattern {i}"),
                "(not in the paper)",
                format!("ATC {atc:.1} % vs D-ATC {datc:.1} %"),
            )
        })
        .collect();
    out.push_str(&comparison_table(
        "Extension — continuous tracking tasks (quantisation stress)",
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> ReferenceCase {
        ReferenceCase::fig3_reference()
    }

    #[test]
    fn every_frame_size_yields_usable_correlation() {
        let sweep = frame_size_sweep(&case());
        for p in &sweep {
            // 65 % leaves headroom for RNG-stream variation in the
            // synthetic corpus; frame 800 reacts an order of magnitude
            // slower than the paper default and sits closest to the bound.
            assert!(
                p.correlation > 65.0,
                "{}: {:.1} %",
                p.setting,
                p.correlation
            );
            assert!(p.events > 100, "{}: {} events", p.setting, p.events);
        }
        // the paper's frame-100 default should be at or near the best
        let best = sweep
            .iter()
            .map(|p| p.correlation)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            sweep[0].correlation > best - 5.0,
            "frame 100 not competitive"
        );
    }

    #[test]
    fn dac_resolution_trades_symbols_for_accuracy() {
        let sweep = dac_bits_sweep(&case());
        // symbols per event grow with bits
        for w in sweep.windows(2) {
            let per_event_a = w[0].symbols as f64 / w[0].events.max(1) as f64;
            let per_event_b = w[1].symbols as f64 / w[1].events.max(1) as f64;
            assert!(per_event_b > per_event_a);
        }
        // 4 bits should already be in the high-correlation plateau
        let four = &sweep[2];
        assert!(four.correlation > 85.0, "4-bit: {:.1} %", four.correlation);
        // 2 bits is visibly worse than the best setting
        let best = sweep
            .iter()
            .map(|p| p.correlation)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(sweep[0].correlation < best, "2-bit not worst?");
    }

    #[test]
    fn paper_weights_are_competitive() {
        let sweep = weights_sweep(&case());
        let paper = sweep[0].correlation;
        for p in &sweep[1..] {
            assert!(
                paper > p.correlation - 5.0,
                "paper {:.1} far below {}: {:.1}",
                paper,
                p.setting,
                p.correlation
            );
        }
    }

    #[test]
    fn hybrid_receiver_wins_or_ties() {
        let sweep = reconstructor_sweep(&case());
        let hybrid = sweep.iter().find(|p| p.setting == "hybrid").unwrap();
        for p in &sweep {
            assert!(
                hybrid.correlation > p.correlation - 6.0,
                "hybrid {:.1} far below {}: {:.1}",
                hybrid.correlation,
                p.setting,
                p.correlation
            );
        }
    }
}
