//! Text rendering helpers shared by the figure runners.

use std::fmt::Write as _;

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What is being compared.
    pub label: String,
    /// The value the paper reports (as printed there).
    pub paper: String,
    /// The value this reproduction measured.
    pub measured: String,
}

impl Row {
    /// Builds a row.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
        }
    }
}

/// Renders rows as a fixed-width comparison table.
pub fn comparison_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let w_label = rows.iter().map(|r| r.label.len()).max().unwrap_or(8).max(8);
    let w_paper = rows.iter().map(|r| r.paper.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<w_label$}  {:>w_paper$}  measured",
        "quantity", "paper"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<w_label$}  {:>w_paper$}  {}",
            r.label, r.paper, r.measured
        );
    }
    out
}

/// A tiny ASCII sparkline (8 levels) of a series, for terminal reports.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Downsamples a long series to `n` points (mean per bucket) for
/// sparklines.
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.is_empty() || n == 0 {
        return Vec::new();
    }
    let bucket = (values.len() as f64 / n as f64).max(1.0);
    (0..n)
        .map(|i| {
            let lo = (i as f64 * bucket) as usize;
            let hi = (((i + 1) as f64 * bucket) as usize)
                .min(values.len())
                .max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_rows() {
        let t = comparison_table(
            "Fig. 3",
            &[
                Row::new("correlation", "96.41 %", "97.2 %"),
                Row::new("events", "3724", "2008"),
            ],
        );
        assert!(t.contains("Fig. 3"));
        assert!(t.contains("96.41 %"));
        assert!(t.contains("2008"));
    }

    #[test]
    fn sparkline_length_matches_input() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_of_constant_series_is_flat() {
        let s = sparkline(&[2.0; 5]);
        assert_eq!(s.chars().count(), 5);
    }

    #[test]
    fn downsample_reduces_length() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = downsample(&xs, 10);
        assert_eq!(d.len(), 10);
        assert!(d[9] > d[0]);
    }

    #[test]
    fn downsample_degenerate_inputs() {
        assert!(downsample(&[], 5).is_empty());
        assert!(downsample(&[1.0], 0).is_empty());
    }
}
