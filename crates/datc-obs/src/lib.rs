//! Unified observability for the datc stack: a lock-light metrics
//! registry, two exporters, and a stage-clock span API.
//!
//! Every operational number the workspace produces — hub health, decode
//! books, fleet throughput, per-session latency — flows through one
//! [`Registry`]:
//!
//! * [`Counter`] / [`Gauge`] — a single relaxed atomic each; updating
//!   one is a handful of nanoseconds and never takes a lock, so handles
//!   are safe to touch from hot paths. The heavier convention used by
//!   the instrumented crates is cheaper still: keep plain local tallies
//!   on the hot path and *sync* them into the registry at natural
//!   boundaries (per socket read, per encode), so the steady-state cost
//!   is a few relaxed stores per batch.
//! * [`Histogram`] — fixed power-of-two (log-scale) buckets over `u64`
//!   observations; one relaxed `fetch_add` per observation, and the
//!   bucket counts are exact integers, so a histogram filled from a
//!   deterministic tick-domain measurement is bit-reproducible.
//! * [`StageClock`] — marks an event batch's journey through the
//!   pipeline stages (encode → packetize → transport → decode → emit)
//!   in any monotonic `u64` domain (clock ticks for determinism,
//!   nanoseconds for wall clock) and records the per-leg latencies into
//!   registry histograms.
//!
//! Two exporters render a registry snapshot with stable, documented
//! names: [`render_prometheus`] (text scrape format) and
//! [`render_json`] (flat JSON object). Both sort by metric identity, so
//! their output is deterministic and golden-testable.
//!
//! Registration is idempotent: asking for an existing `(name, labels)`
//! pair returns a handle to the same metric, so independent components
//! can share tallies without coordination.
//!
//! Disabling the default `metrics` feature compiles every mutation to a
//! no-op (registration and export still work; values stay zero) — the
//! kill switch for measuring instrumentation overhead floors.
//!
//! # Example
//!
//! ```
//! use datc_obs::{render_prometheus, Registry};
//!
//! let reg = Registry::new();
//! let frames = reg.counter("datc_rx_frames_total");
//! frames.add(3);
//! let lat = reg.histogram_with("datc_session_latency_ticks", &[("session", "7")]);
//! lat.observe(12);
//! let text = render_prometheus(&reg);
//! # if cfg!(feature = "metrics") {
//! assert!(text.contains("datc_rx_frames_total 3"));
//! assert!(text.contains("datc_session_latency_ticks_count{session=\"7\"} 1"));
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod export;
pub mod registry;
pub mod span;

pub use export::{render_json, render_prometheus};
pub use registry::{
    BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, BUCKETS,
};
pub use span::{Stage, StageClock, StageHistograms};
