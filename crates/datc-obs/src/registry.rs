//! The metrics registry and its three instrument kinds.
//!
//! A [`Registry`] is a cheaply clonable handle (an `Arc` inside) over a
//! name → metric map. Handles returned by registration
//! ([`Counter`], [`Gauge`], [`Histogram`]) are themselves clonable
//! `Arc`-backed views onto the stored atomics: the registry lock is
//! taken only at registration/removal/snapshot time, never on the
//! update path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const RELAXED: Ordering = Ordering::Relaxed;

/// A monotonically increasing tally (relaxed atomic `u64`).
///
/// Besides [`inc`](Counter::inc)/[`add`](Counter::add), counters
/// support [`store`](Counter::store) for the sync-a-local-tally
/// convention: hot paths keep a plain `u64` and publish the running
/// total at batch boundaries with one relaxed store.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        #[cfg(feature = "metrics")]
        self.v.fetch_add(n, RELAXED);
        #[cfg(not(feature = "metrics"))]
        let _ = n;
    }

    /// Publishes an externally maintained monotonic total (overwrites).
    pub fn store(&self, total: u64) {
        #[cfg(feature = "metrics")]
        self.v.store(total, RELAXED);
        #[cfg(not(feature = "metrics"))]
        let _ = total;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(RELAXED)
    }
}

/// A point-in-time value (an `f64` stored in a relaxed atomic `u64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        #[cfg(feature = "metrics")]
        self.bits.store(value.to_bits(), RELAXED);
        #[cfg(not(feature = "metrics"))]
        let _ = value;
    }

    /// Current value (0.0 until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(RELAXED))
    }
}

/// Number of histogram buckets: one per power of two of `u64` plus the
/// zero bucket. Bucket `0` holds exactly 0; bucket `i >= 1` holds
/// `2^(i-1) <= v < 2^i` (see [`Histogram`]).
pub const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log-scale histogram over `u64` observations.
///
/// Bucket `i` holds values `v` with `2^(i-1) <= v < 2^i` (bucket 0
/// holds exactly 0), so an observation costs one `leading_zeros` and
/// two relaxed `fetch_add`s. Counts are exact integers: filling a
/// histogram from a deterministic measurement (e.g. tick-domain
/// latencies) yields a bit-reproducible [`HistogramSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        #[cfg(feature = "metrics")]
        {
            let bucket = (64 - value.leading_zeros()) as usize;
            self.inner.buckets[bucket].fetch_add(1, RELAXED);
            self.inner.count.fetch_add(1, RELAXED);
            self.inner.sum.fetch_add(value, RELAXED);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = value;
    }

    /// Records a batch of observations in one pass: buckets accumulate
    /// in a stack-local array and flush with a single `fetch_add` per
    /// touched bucket, so the per-value cost is a `leading_zeros` and a
    /// local increment instead of three shared-cache atomics. Use this
    /// on per-event hot paths.
    pub fn observe_iter<I: IntoIterator<Item = u64>>(&self, values: I) {
        #[cfg(feature = "metrics")]
        {
            let mut local = [0u64; BUCKETS];
            let mut count = 0u64;
            let mut sum = 0u64;
            for v in values {
                local[(64 - v.leading_zeros()) as usize] += 1;
                count += 1;
                sum = sum.wrapping_add(v);
            }
            if count == 0 {
                return;
            }
            for (bucket, &n) in local.iter().enumerate() {
                if n > 0 {
                    self.inner.buckets[bucket].fetch_add(n, RELAXED);
                }
            }
            self.inner.count.fetch_add(count, RELAXED);
            self.inner.sum.fetch_add(sum, RELAXED);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = values;
    }

    /// Merges a pre-bucketed batch: `counts[i]` observations landing in
    /// bucket `i` of the [`BUCKETS`] log-scale layout `observe` uses,
    /// with `sum` the batch's total observed value. For hot paths that
    /// can bucket analytically — e.g. monotone data partitioned by
    /// binary-searched thresholds — without touching every value.
    pub fn observe_bucketed(&self, counts: &[u64; BUCKETS], sum: u64) {
        #[cfg(feature = "metrics")]
        {
            let mut total = 0u64;
            for (bucket, &n) in counts.iter().enumerate() {
                if n > 0 {
                    self.inner.buckets[bucket].fetch_add(n, RELAXED);
                    total += n;
                }
            }
            if total == 0 {
                return;
            }
            self.inner.count.fetch_add(total, RELAXED);
            self.inner.sum.fetch_add(sum, RELAXED);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (counts, sum);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(RELAXED)
    }

    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(RELAXED)
    }

    /// A consistent-enough copy of the bucket state (relaxed loads;
    /// exact when no concurrent writer is active). Only populated
    /// buckets appear.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.inner.buckets.iter().enumerate() {
            let count = b.load(RELAXED);
            if count > 0 {
                buckets.push(BucketCount {
                    le: bucket_upper_bound(i),
                    count,
                });
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One populated histogram bucket: `count` observations at most `le`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations that landed in this bucket (non-cumulative).
    pub count: u64,
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Populated buckets, ascending by bound, non-cumulative counts.
    pub buckets: Vec<BucketCount>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A snapshot of one metric's value, as handed to the exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The metric identity: a name plus a pre-rendered label body
/// (`key="value",…`, empty for unlabeled metrics). Ordering the map by
/// this pair is what makes exporter output deterministic.
type Key = (String, String);

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<Key, Metric>>,
}

/// A shareable collection of named metrics.
///
/// Cloning a `Registry` clones a handle to the same underlying map, so
/// every component of a process (or a hub's worker threads) can
/// register and update metrics against one registry.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

/// `true` for names the exporters can emit verbatim:
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        assert!(valid_name(k), "invalid label name {k:?}");
        assert!(
            !v.contains('"') && !v.contains('\\') && !v.contains('\n'),
            "label value {v:?} needs no escaping by contract"
        );
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register_with<T: Clone>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        wrap: impl Fn(T) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<T>,
        fresh: impl Fn() -> T,
    ) -> T {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key = (name.to_owned(), render_labels(labels));
        let mut map = self.inner.metrics.lock().expect("registry poisoned");
        if let Some(existing) = map.get(&key) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!(
                    "metric {name}{{{}}} already registered as a {}",
                    key.1,
                    existing.kind()
                )
            });
        }
        let value = fresh();
        map.insert(key, wrap(value.clone()));
        value
    }

    /// Registers (or fetches) an unlabeled counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or when the name is already
    /// registered as a different metric kind (same for every
    /// registration method).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or fetches) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.register_with(
            name,
            labels,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::default,
        )
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or fetches) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.register_with(
            name,
            labels,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::default,
        )
    }

    /// Registers (or fetches) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Registers (or fetches) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.register_with(
            name,
            labels,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Histogram::default,
        )
    }

    /// Removes one metric; `true` when it existed. Outstanding handles
    /// keep working but are no longer exported — how a bounded-memory
    /// deployment retires per-session metrics.
    pub fn remove(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        let key = (name.to_owned(), render_labels(labels));
        self.inner
            .metrics
            .lock()
            .expect("registry poisoned")
            .remove(&key)
            .is_some()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.metrics.lock().expect("registry poisoned").len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every metric as `(name, label_body, value)`, sorted by
    /// name then label body — the deterministic order both exporters
    /// render in.
    pub fn snapshot(&self) -> Vec<(String, String, MetricValue)> {
        let map = self.inner.metrics.lock().expect("registry poisoned");
        map.iter()
            .map(|((name, labels), metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), labels.clone(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "metrics")]
    fn counters_accumulate_and_share_by_identity() {
        let reg = Registry::new();
        let a = reg.counter("datc_test_total");
        let b = reg.counter("datc_test_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "same identity, same tally");
        let other = reg.counter_with("datc_test_total", &[("k", "v")]);
        other.inc();
        assert_eq!(a.get(), 5, "labels distinguish identities");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn batched_observation_paths_match_observe() {
        let values: Vec<u64> = vec![0, 1, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX];
        let reference = Histogram::default();
        for &v in &values {
            reference.observe(v);
        }

        let iter = Histogram::default();
        iter.observe_iter(values.iter().copied());
        assert_eq!(iter.snapshot(), reference.snapshot(), "observe_iter");

        let bucketed = Histogram::default();
        let mut counts = [0u64; BUCKETS];
        let mut sum = 0u64;
        for &v in &values {
            counts[(64 - v.leading_zeros()) as usize] += 1;
            sum = sum.wrapping_add(v);
        }
        bucketed.observe_bucketed(&counts, sum);
        assert_eq!(
            bucketed.snapshot(),
            reference.snapshot(),
            "observe_bucketed"
        );

        // empty batches must not touch count/sum
        iter.observe_iter(std::iter::empty());
        bucketed.observe_bucketed(&[0u64; BUCKETS], 999);
        assert_eq!(iter.count(), reference.count());
        assert_eq!(bucketed.sum(), reference.sum());
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn counter_store_publishes_local_tallies() {
        let reg = Registry::new();
        let c = reg.counter("datc_synced_total");
        let mut local = 0u64;
        for _ in 0..100 {
            local += 3;
        }
        c.store(local);
        assert_eq!(c.get(), 300);
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn gauges_hold_floats() {
        let reg = Registry::new();
        let g = reg.gauge("datc_rate");
        assert_eq!(g.get(), 0.0);
        g.set(12.5);
        assert_eq!(g.get(), 12.5);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn histogram_buckets_are_powers_of_two() {
        let reg = Registry::new();
        let h = reg.histogram("datc_lat_ticks");
        for v in [0, 1, 2, 3, 4, 63, 64, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 2 + 3 + 4 + 63 + 64)
                .wrapping_add(u64::MAX)
        );
        let by_le: Vec<(u64, u64)> = snap.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(
            by_le,
            vec![
                (0, 1),        // 0
                (1, 1),        // 1
                (3, 2),        // 2, 3
                (7, 1),        // 4
                (63, 1),       // 63
                (127, 1),      // 64
                (u64::MAX, 1)  // u64::MAX
            ]
        );
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn histogram_snapshots_are_reproducible() {
        let fill = || {
            let h = Histogram::default();
            for v in 0..1000u64 {
                h.observe(v * v % 977);
            }
            h.snapshot()
        };
        assert_eq!(fill(), fill());
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn remove_retires_a_metric() {
        let reg = Registry::new();
        let g = reg.gauge_with("datc_session_bytes", &[("session", "9")]);
        g.set(1.0);
        assert!(reg.remove("datc_session_bytes", &[("session", "9")]));
        assert!(!reg.remove("datc_session_bytes", &[("session", "9")]));
        assert!(reg.is_empty());
        g.set(2.0); // handle still works, just unexported
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("datc_thing");
        let _ = reg.gauge("datc_thing");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_rejected() {
        let _ = Registry::new().counter("datc thing");
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn registry_clones_share_state() {
        let reg = Registry::new();
        let alias = reg.clone();
        reg.counter("datc_shared_total").add(7);
        assert_eq!(alias.counter("datc_shared_total").get(), 7);
    }
}
