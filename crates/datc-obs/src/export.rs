//! Exporters: Prometheus text scrape format and a flat JSON snapshot.
//!
//! Both render a [`Registry::snapshot`] in metric-identity order
//! (name, then label body), so output for the same metric state is
//! byte-identical run to run — the property the golden-format tests
//! pin down.
//!
//! ## Prometheus text format
//!
//! ```text
//! # TYPE datc_rx_frames_total counter
//! datc_rx_frames_total 3
//! # TYPE datc_session_latency_ticks histogram
//! datc_session_latency_ticks_bucket{session="7",le="15"} 1
//! datc_session_latency_ticks_bucket{session="7",le="+Inf"} 1
//! datc_session_latency_ticks_sum{session="7"} 12
//! datc_session_latency_ticks_count{session="7"} 1
//! ```
//!
//! Histogram `_bucket` lines are cumulative (Prometheus convention) and
//! only populated bucket bounds are emitted, followed by the mandatory
//! `+Inf` bucket. A `# TYPE` line precedes each distinct metric name
//! once.
//!
//! ## JSON snapshot
//!
//! One flat object keyed by `name` or `name{labels}`; counters render
//! as integers, gauges as floats, histograms as
//! `{"count": …, "sum": …, "buckets": [{"le": …, "count": …}, …]}`
//! with non-cumulative per-bucket counts (`"le": null` marks the
//! top bucket, whose bound exceeds JSON's exact-integer range).

use crate::registry::{HistogramSnapshot, MetricValue, Registry};

/// Renders a gauge value the same way in both exporters: integral
/// values without a trailing `.0` (Rust's default `f64` Display), which
/// both Prometheus and JSON accept.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders the registry in the Prometheus text exposition format.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_name: Option<String> = None;
    for (name, labels, value) in registry.snapshot() {
        if last_name.as_deref() != Some(name.as_str()) {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_name = Some(name.clone());
        }
        let ident = |suffix: &str, extra: &str| -> String {
            let mut body = labels.clone();
            if !extra.is_empty() {
                if !body.is_empty() {
                    body.push(',');
                }
                body.push_str(extra);
            }
            if body.is_empty() {
                format!("{name}{suffix}")
            } else {
                format!("{name}{suffix}{{{body}}}")
            }
        };
        match value {
            MetricValue::Counter(v) => out.push_str(&format!("{} {v}\n", ident("", ""))),
            MetricValue::Gauge(v) => out.push_str(&format!("{} {}\n", ident("", ""), fmt_f64(v))),
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for b in &h.buckets {
                    cumulative += b.count;
                    out.push_str(&format!(
                        "{} {cumulative}\n",
                        ident("_bucket", &format!("le=\"{}\"", b.le))
                    ));
                }
                out.push_str(&format!(
                    "{} {}\n",
                    ident("_bucket", "le=\"+Inf\""),
                    h.count
                ));
                out.push_str(&format!("{} {}\n", ident("_sum", ""), h.sum));
                out.push_str(&format!("{} {}\n", ident("_count", ""), h.count));
            }
        }
    }
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            buckets.push_str(", ");
        }
        // u64::MAX exceeds JSON's exactly-representable integer range;
        // null marks "the rest of the u64 axis".
        let le = if b.le == u64::MAX {
            "null".to_owned()
        } else {
            b.le.to_string()
        };
        buckets.push_str(&format!("{{\"le\": {le}, \"count\": {}}}", b.count));
    }
    buckets.push(']');
    format!(
        "{{\"count\": {}, \"sum\": {}, \"buckets\": {buckets}}}",
        h.count, h.sum
    )
}

/// Renders the registry as one flat, sorted JSON object.
pub fn render_json(registry: &Registry) -> String {
    let mut out = String::from("{\n");
    let snapshot = registry.snapshot();
    for (i, (name, labels, value)) in snapshot.iter().enumerate() {
        let key = if labels.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{}}}", labels.replace('"', "\\\""))
        };
        let rendered = match value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => fmt_f64(*v),
            MetricValue::Histogram(h) => json_histogram(h),
        };
        out.push_str(&format!("  \"{key}\": {rendered}"));
        out.push_str(if i + 1 < snapshot.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A registry with one of everything, in fixed state — the shared
    /// fixture both golden tests render.
    fn golden_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("datc_rx_frames_total").add(42);
        reg.counter_with("datc_rx_frames_total", &[("session", "3")])
            .add(7);
        reg.gauge("datc_hub_sessions_in_flight").set(2.0);
        reg.gauge_with("datc_session_event_rate_ewma", &[("session", "3")])
            .set(150.25);
        let h = reg.histogram_with("datc_session_latency_ticks", &[("session", "3")]);
        for v in [0u64, 1, 5, 5, 200] {
            h.observe(v);
        }
        reg
    }

    /// The scrape format is pinned byte for byte: any change to metric
    /// naming, ordering, or histogram rendering must show up here as a
    /// deliberate golden update.
    #[test]
    #[cfg(feature = "metrics")]
    fn prometheus_golden_format() {
        let expected = "\
# TYPE datc_hub_sessions_in_flight gauge
datc_hub_sessions_in_flight 2
# TYPE datc_rx_frames_total counter
datc_rx_frames_total 42
datc_rx_frames_total{session=\"3\"} 7
# TYPE datc_session_event_rate_ewma gauge
datc_session_event_rate_ewma{session=\"3\"} 150.25
# TYPE datc_session_latency_ticks histogram
datc_session_latency_ticks_bucket{session=\"3\",le=\"0\"} 1
datc_session_latency_ticks_bucket{session=\"3\",le=\"1\"} 2
datc_session_latency_ticks_bucket{session=\"3\",le=\"7\"} 4
datc_session_latency_ticks_bucket{session=\"3\",le=\"255\"} 5
datc_session_latency_ticks_bucket{session=\"3\",le=\"+Inf\"} 5
datc_session_latency_ticks_sum{session=\"3\"} 211
datc_session_latency_ticks_count{session=\"3\"} 5
";
        assert_eq!(render_prometheus(&golden_registry()), expected);
    }

    #[test]
    #[cfg(feature = "metrics")]
    fn json_golden_format() {
        let expected = "\
{
  \"datc_hub_sessions_in_flight\": 2,
  \"datc_rx_frames_total\": 42,
  \"datc_rx_frames_total{session=\\\"3\\\"}\": 7,
  \"datc_session_event_rate_ewma{session=\\\"3\\\"}\": 150.25,
  \"datc_session_latency_ticks{session=\\\"3\\\"}\": {\"count\": 5, \"sum\": 211, \
\"buckets\": [{\"le\": 0, \"count\": 1}, {\"le\": 1, \"count\": 1}, \
{\"le\": 7, \"count\": 2}, {\"le\": 255, \"count\": 1}]}
}
";
        assert_eq!(render_json(&golden_registry()), expected);
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let reg = Registry::new();
        assert_eq!(render_prometheus(&reg), "");
        assert_eq!(render_json(&reg), "{\n}\n");
    }

    #[test]
    fn rendering_is_deterministic_regardless_of_registration_order() {
        let a = Registry::new();
        a.counter("datc_b_total").add(1);
        a.gauge("datc_a").set(2.0);
        let b = Registry::new();
        b.gauge("datc_a").set(2.0);
        b.counter("datc_b_total").add(1);
        assert_eq!(render_prometheus(&a), render_prometheus(&b));
        assert_eq!(render_json(&a), render_json(&b));
    }
}
