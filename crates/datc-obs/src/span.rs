//! Stage-clock spans: tracing an event batch's journey through the
//! pipeline.
//!
//! A [`StageClock`] collects one `u64` timestamp per [`Stage`] of the
//! encode → packetize → transport → decode → emit journey. The time
//! domain is the caller's: pass clock **ticks** for a deterministic,
//! bit-reproducible trace (the convention the acceptance tests pin), or
//! nanoseconds via [`StageClock::mark_now`] for a wall-clock variant.
//! [`StageHistograms`] registers one latency histogram per consecutive
//! leg plus the end-to-end total, and [`StageClock::record`] feeds a
//! finished clock into them.
//!
//! # Example
//!
//! ```
//! use datc_obs::{Registry, Stage, StageClock, StageHistograms};
//!
//! let reg = Registry::new();
//! let legs = StageHistograms::register(&reg, "datc_pipeline", "ticks");
//! let mut clock = StageClock::new();
//! clock.mark(Stage::Encode, 0);
//! clock.mark(Stage::Packetize, 40);
//! clock.mark(Stage::Transport, 90);
//! clock.mark(Stage::Decode, 100);
//! clock.mark(Stage::Emit, 160);
//! assert_eq!(clock.elapsed(Stage::Encode, Stage::Emit), Some(160));
//! clock.record(&legs);
//! # if cfg!(feature = "metrics") {
//! assert_eq!(legs.total().count(), 1);
//! assert_eq!(legs.total().sum(), 160);
//! # }
//! ```

use crate::registry::{Histogram, Registry};

/// One stage of an event's journey through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Comparator fired: the event exists (encoder output).
    Encode,
    /// Serialised into a wire frame.
    Packetize,
    /// Handed to the transport (socket write / datagram send).
    Transport,
    /// Reassembled by the receiving decoder.
    Decode,
    /// Force sample determined and emitted by the reconstructor.
    Emit,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Encode,
        Stage::Packetize,
        Stage::Transport,
        Stage::Decode,
        Stage::Emit,
    ];

    /// Lower-case stage name, as used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::Packetize => "packetize",
            Stage::Transport => "transport",
            Stage::Decode => "decode",
            Stage::Emit => "emit",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-stage timestamps for one traced batch. Plain data — create one
/// per batch (or reuse after [`reset`](StageClock::reset)); it touches
/// no shared state until [`record`](StageClock::record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageClock {
    marks: [Option<u64>; 5],
}

impl StageClock {
    /// An empty clock.
    pub fn new() -> StageClock {
        StageClock::default()
    }

    /// Stamps `stage` at time `t` (any monotonic `u64` domain; the last
    /// mark per stage wins).
    pub fn mark(&mut self, stage: Stage, t: u64) {
        self.marks[stage.index()] = Some(t);
    }

    /// Stamps `stage` with the nanoseconds elapsed since `epoch` — the
    /// wall-clock variant (not reproducible across runs; keep tick
    /// domains for anything asserted bit-exact).
    pub fn mark_now(&mut self, stage: Stage, epoch: std::time::Instant) {
        self.mark(stage, epoch.elapsed().as_nanos() as u64);
    }

    /// The timestamp recorded for `stage`, if any.
    pub fn at(&self, stage: Stage) -> Option<u64> {
        self.marks[stage.index()]
    }

    /// Elapsed time from `from` to `to`; `None` until both are marked.
    /// Saturates at zero when marks arrive out of order (e.g. a decode
    /// watermark behind the encode tick after clock skew).
    pub fn elapsed(&self, from: Stage, to: Stage) -> Option<u64> {
        match (self.at(from), self.at(to)) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        }
    }

    /// Clears every mark, keeping the value reusable.
    pub fn reset(&mut self) {
        self.marks = [None; 5];
    }

    /// Observes every fully marked consecutive leg (and the end-to-end
    /// total) into `legs`.
    pub fn record(&self, legs: &StageHistograms) {
        for (from, to, h) in &legs.legs {
            if let Some(dt) = self.elapsed(*from, *to) {
                h.observe(dt);
            }
        }
        if let Some(dt) = self.elapsed(Stage::Encode, Stage::Emit) {
            legs.total.observe(dt);
        }
    }
}

/// The latency histograms a [`StageClock`] records into: one per
/// consecutive stage pair, named
/// `<prefix>_<from>_to_<to>_<unit>`, plus `<prefix>_total_<unit>` for
/// the full encode → emit journey.
#[derive(Debug, Clone)]
pub struct StageHistograms {
    legs: Vec<(Stage, Stage, Histogram)>,
    total: Histogram,
}

impl StageHistograms {
    /// Registers the leg histograms in `registry`. `unit` names the
    /// time domain (`"ticks"` or `"ns"`) and becomes part of the metric
    /// name, so both variants can coexist.
    pub fn register(registry: &Registry, prefix: &str, unit: &str) -> StageHistograms {
        let legs = Stage::ALL
            .windows(2)
            .map(|w| {
                let (from, to) = (w[0], w[1]);
                let name = format!("{prefix}_{}_to_{}_{unit}", from.name(), to.name());
                (from, to, registry.histogram(&name))
            })
            .collect();
        StageHistograms {
            legs,
            total: registry.histogram(&format!("{prefix}_total_{unit}")),
        }
    }

    /// The end-to-end (encode → emit) histogram.
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// The histogram for one consecutive leg, if `from` directly
    /// precedes `to`.
    pub fn leg(&self, from: Stage, to: Stage) -> Option<&Histogram> {
        self.legs
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "metrics")]
    fn partial_clocks_record_only_marked_legs() {
        let reg = Registry::new();
        let legs = StageHistograms::register(&reg, "datc_pipeline", "ticks");
        let mut clock = StageClock::new();
        clock.mark(Stage::Decode, 100);
        clock.mark(Stage::Emit, 130);
        clock.record(&legs);
        assert_eq!(legs.leg(Stage::Decode, Stage::Emit).unwrap().count(), 1);
        assert_eq!(legs.leg(Stage::Decode, Stage::Emit).unwrap().sum(), 30);
        assert_eq!(
            legs.leg(Stage::Encode, Stage::Packetize).unwrap().count(),
            0
        );
        assert_eq!(legs.total().count(), 0, "no encode mark, no total");
    }

    #[test]
    fn out_of_order_marks_saturate_to_zero() {
        let mut clock = StageClock::new();
        clock.mark(Stage::Encode, 500);
        clock.mark(Stage::Emit, 400);
        assert_eq!(clock.elapsed(Stage::Encode, Stage::Emit), Some(0));
    }

    #[test]
    fn reset_makes_the_clock_reusable() {
        let mut clock = StageClock::new();
        clock.mark(Stage::Encode, 1);
        clock.reset();
        assert_eq!(clock, StageClock::new());
    }

    #[test]
    fn registered_leg_names_are_stable() {
        let reg = Registry::new();
        let _ = StageHistograms::register(&reg, "datc_pipeline", "ticks");
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "datc_pipeline_decode_to_emit_ticks",
                "datc_pipeline_encode_to_packetize_ticks",
                "datc_pipeline_packetize_to_transport_ticks",
                "datc_pipeline_total_ticks",
                "datc_pipeline_transport_to_decode_ticks",
            ]
        );
    }
}
