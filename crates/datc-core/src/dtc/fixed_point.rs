//! The threshold predictor (Listing 1) in hardware fixed-point and
//! reference floating-point arithmetic.
//!
//! Hardware path: weights are quantised to 1/256 (`{256, 166, 90}` for the
//! paper's `{1.0, 0.65, 0.35}`), so with the algorithm's divide-by-2 the
//! weighted average `AVR` appears scaled by 512 and the comparison against
//! the interval ROM ([`super::intervals::IntervalTable`]) is exact in
//! integers — no divider is synthesised.

use super::intervals::{IntervalTable, AVR_SCALE};

/// Weight quantisation denominator used by the hardware multiplier
/// constants.
pub const WEIGHT_SCALE: u64 = 256;

/// Quantises `(w3, w2, w1)` to multiples of 1/256.
///
/// The paper's `(1.0, 0.65, 0.35)` become `(256, 166, 90)`; `166/256 =
/// 0.6484…`, `90/256 = 0.3516…` — within 0.2 % of the nominal weights.
pub fn quantize_weights(weights: (f64, f64, f64)) -> (u64, u64, u64) {
    let q = |w: f64| (w * WEIGHT_SCALE as f64).round().max(0.0) as u64;
    (q(weights.0), q(weights.1), q(weights.2))
}

/// Floating-point `AVR` per Listing 1: `(w3·n3 + w2·n2 + w1·n1) / 2`.
pub fn avr_float(n3: u32, n2: u32, n1: u32, weights: (f64, f64, f64)) -> f64 {
    (weights.0 * f64::from(n3) + weights.1 * f64::from(n2) + weights.2 * f64::from(n1)) / 2.0
}

/// Fixed-point `AVR` scaled by [`AVR_SCALE`]: `Σ w_q·n` with weights
/// already carrying the ×256 factor (so ×512 total relative to the
/// floating-point value, matching the scaled interval ROM).
pub fn avr_scaled(n3: u32, n2: u32, n1: u32, weights_q: (u64, u64, u64)) -> u64 {
    weights_q.0 * u64::from(n3) + weights_q.1 * u64::from(n2) + weights_q.2 * u64::from(n1)
}

/// The predictor's priority decision (Listing 1), floating point: returns
/// the highest code `k ∈ [2, max_code]` with `AVR ≥ level_k`, else 1.
pub fn predict_code_float(avr: f64, table: &IntervalTable, max_code: u8) -> u8 {
    let top = usize::from(max_code).min(table.n_levels() - 1);
    for k in (2..=top).rev() {
        if avr >= table.level_float(k) {
            return k as u8;
        }
    }
    1
}

/// The predictor's priority decision, fixed point (scaled by
/// [`AVR_SCALE`]): bit-exact model of the synthesised comparator tree.
pub fn predict_code_fixed(avr_scaled: u64, table: &IntervalTable, max_code: u8) -> u8 {
    let top = usize::from(max_code).min(table.n_levels() - 1);
    for k in (2..=top).rev() {
        if avr_scaled >= table.level_scaled(k) {
            return k as u8;
        }
    }
    1
}

/// Sanity-check that the scale constants agree (compile-time contract of
/// the two representations).
pub const fn scales_consistent() -> bool {
    AVR_SCALE == 2 * WEIGHT_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameSize;

    #[test]
    fn paper_weights_quantise_to_known_constants() {
        assert_eq!(quantize_weights((1.0, 0.65, 0.35)), (256, 166, 90));
    }

    #[test]
    fn scales_are_consistent() {
        assert!(scales_consistent());
    }

    #[test]
    fn avr_representations_agree_for_exact_weights() {
        // Weights representable in 1/256 make both paths identical.
        let w = (1.0, 0.5, 0.25);
        let wq = quantize_weights(w);
        for (n3, n2, n1) in [(0u32, 0, 0), (10, 20, 30), (48, 47, 46), (100, 0, 100)] {
            let f = avr_float(n3, n2, n1, w);
            let s = avr_scaled(n3, n2, n1, wq);
            assert_eq!((f * AVR_SCALE as f64).round() as u64, s);
        }
    }

    #[test]
    fn predictor_floor_is_code_1() {
        let t = IntervalTable::paper(FrameSize::F100);
        assert_eq!(predict_code_float(0.0, &t, 15), 1);
        assert_eq!(predict_code_fixed(0, &t, 15), 1);
        // Even an AVR between level_0 and level_2 floors at 1 — Listing 1
        // never emits code 0.
        assert_eq!(predict_code_float(4.0, &t, 15), 1);
    }

    #[test]
    fn predictor_saturates_at_max_code() {
        let t = IntervalTable::paper(FrameSize::F100);
        assert_eq!(predict_code_float(1e9, &t, 15), 15);
        assert_eq!(predict_code_fixed(u64::MAX / 2, &t, 15), 15);
    }

    #[test]
    fn predictor_is_monotonic_in_avr() {
        let t = IntervalTable::paper(FrameSize::F400);
        let mut last = 0u8;
        for i in 0..2000 {
            let avr = i as f64 * 0.1;
            let c = predict_code_float(avr, &t, 15);
            assert!(c >= last, "code decreased at avr={avr}");
            last = c;
        }
        assert_eq!(last, 15);
    }

    #[test]
    fn fixed_and_float_agree_away_from_boundaries() {
        let t = IntervalTable::paper(FrameSize::F100);
        let w = (1.0, 0.65, 0.35);
        let wq = quantize_weights(w);
        let mut disagreements = 0u32;
        let mut total = 0u32;
        for n3 in (0..=100).step_by(5) {
            for n2 in (0..=100).step_by(5) {
                for n1 in (0..=100).step_by(5) {
                    let cf = predict_code_float(avr_float(n3, n2, n1, w), &t, 15);
                    let cx = predict_code_fixed(avr_scaled(n3, n2, n1, wq), &t, 15);
                    total += 1;
                    if cf != cx {
                        disagreements += 1;
                        assert!(
                            (i16::from(cf) - i16::from(cx)).abs() <= 1,
                            "codes differ by more than 1 LSB: {cf} vs {cx}"
                        );
                    }
                }
            }
        }
        // quantised weights differ by <0.2 %; boundary flips must be rare
        assert!(
            f64::from(disagreements) / f64::from(total) < 0.02,
            "{disagreements}/{total} disagreements"
        );
    }

    #[test]
    fn exact_boundary_maps_to_level() {
        // AVR exactly at a level takes that level (>= comparison).
        let t = IntervalTable::paper(FrameSize::F100);
        for k in 2..=15usize {
            let c = predict_code_float(t.level_float(k), &t, 15);
            assert_eq!(c as usize, k);
        }
    }
}
