//! The Dynamic Threshold Controller (DTC) — the custom digital logic of
//! Fig. 4, cycle-accurate.
//!
//! Per system-clock cycle (2 kHz in the paper) the DTC:
//!
//! 1. re-samples the asynchronous comparator bit through the
//!    metastability register `In_reg`;
//! 2. increments the frame counter when the synchronised bit is `'1'`;
//! 3. at `End_of_frame` (every 100/200/400/800 cycles) latches the count
//!    into the three-frame history, computes the weighted average `AVR`
//!    (Listing 1) and issues the next threshold code `Set_Vth`;
//! 4. exposes the synchronised bit as `D_out` for the IR-UWB modulator,
//!    which radiates an event pattern on every rising edge.

pub mod fixed_point;
pub mod intervals;

use crate::config::{Arithmetic, DatcConfig};
use crate::error::CoreError;
use fixed_point::{
    avr_float, avr_scaled, predict_code_fixed, predict_code_float, quantize_weights,
};
use intervals::IntervalTable;

/// Everything the DTC drives during one clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtcStep {
    /// The synchronised comparator bit (`D_out`), one `In_reg` delay
    /// behind the raw input.
    pub d_out: bool,
    /// `true` on a rising edge of `D_out` — the modulator fires an IR-UWB
    /// event pattern on this.
    pub event: bool,
    /// The threshold code that was in force when this cycle's bit was
    /// sampled (the code an event should be tagged with).
    pub sampled_code: u8,
    /// The threshold code after this cycle (changes only at
    /// `End_of_frame`).
    pub set_vth: u8,
    /// `true` when this cycle closed a frame.
    pub end_of_frame: bool,
}

/// Cycle-accurate behavioural DTC.
///
/// # Example
///
/// ```
/// use datc_core::dtc::Dtc;
/// use datc_core::config::DatcConfig;
///
/// let mut dtc = Dtc::new(DatcConfig::paper())?;
/// let step = dtc.step(true);
/// assert!(!step.event); // In_reg delays the bit by one cycle
/// let step = dtc.step(true);
/// assert!(step.event);  // now the rising edge is visible
/// # Ok::<(), datc_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dtc {
    config: DatcConfig,
    table: IntervalTable,
    weights_q: (u64, u64, u64),
    /// Metastability register between the asynchronous comparator and the
    /// synchronous core.
    in_reg: bool,
    /// Previous `D_out`, for rising-edge detection.
    d_prev: bool,
    /// Ones counted in the current frame.
    counter: u32,
    /// Cycles elapsed in the current frame.
    tick_in_frame: u32,
    /// Count of the previous frame (`N_one2` after the shift).
    n2: u32,
    /// Count of the frame before that (`N_one1` after the shift).
    n1: u32,
    set_vth: u8,
    ticks: u64,
    frames: u64,
}

impl Dtc {
    /// Builds a DTC from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// [`DatcConfig::validate`].
    pub fn new(config: DatcConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let n_levels = 1usize << config.dac_bits;
        let table = IntervalTable::new(config.frame_size.len(), config.interval_step, n_levels);
        Ok(Dtc {
            config,
            table,
            weights_q: quantize_weights(config.weights),
            in_reg: false,
            d_prev: false,
            counter: 0,
            tick_in_frame: 0,
            n2: 0,
            n1: 0,
            set_vth: config.initial_code,
            ticks: 0,
            frames: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &DatcConfig {
        &self.config
    }

    /// The interval ROM in use.
    pub fn interval_table(&self) -> &IntervalTable {
        &self.table
    }

    /// Current threshold code (`Set_Vth`).
    pub fn vth_code(&self) -> u8 {
        self.set_vth
    }

    /// Cycles executed since reset.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Frames completed since reset.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Asynchronous reset (`RST` pin): clears all state, restores the
    /// initial threshold code.
    pub fn reset(&mut self) {
        let config = self.config;
        *self = Dtc::new(config).expect("config was already validated");
    }

    /// Executes one system-clock cycle with raw comparator bit
    /// `d_in_async`.
    pub fn step(&mut self, d_in_async: bool) -> DtcStep {
        // In_reg: the synchronous core sees last cycle's bit.
        let d = self.in_reg;
        self.in_reg = d_in_async;

        let sampled_code = self.set_vth;

        if d {
            self.counter += 1;
        }
        self.tick_in_frame += 1;
        self.ticks += 1;

        let mut end_of_frame = false;
        if self.tick_in_frame == self.config.frame_size.len() {
            end_of_frame = true;
            self.frames += 1;
            let n3 = self.counter;
            self.set_vth = match self.config.arithmetic {
                Arithmetic::Fixed => predict_code_fixed(
                    avr_scaled(n3, self.n2, self.n1, self.weights_q),
                    &self.table,
                    self.config.max_code(),
                ),
                Arithmetic::Float => predict_code_float(
                    avr_float(n3, self.n2, self.n1, self.config.weights),
                    &self.table,
                    self.config.max_code(),
                ),
            };
            // History shift of Listing 1: N_one1 = N_one2; N_one2 = N_one3.
            self.n1 = self.n2;
            self.n2 = n3;
            self.counter = 0;
            self.tick_in_frame = 0;
        }

        let event = d && !self.d_prev;
        self.d_prev = d;

        DtcStep {
            d_out: d,
            event,
            sampled_code,
            set_vth: self.set_vth,
            end_of_frame,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameSize;

    fn run_frames(dtc: &mut Dtc, patterns: &[(usize, bool)]) -> Vec<u8> {
        // patterns: (cycles, bit) chunks; returns code after each frame end
        let mut codes = Vec::new();
        for &(n, bit) in patterns {
            for _ in 0..n {
                let s = dtc.step(bit);
                if s.end_of_frame {
                    codes.push(s.set_vth);
                }
            }
        }
        codes
    }

    #[test]
    fn all_zero_input_floors_threshold_at_1() {
        let mut dtc = Dtc::new(DatcConfig::paper()).unwrap();
        let codes = run_frames(&mut dtc, &[(1000, false)]);
        assert_eq!(codes.len(), 10);
        assert!(codes.iter().all(|&c| c == 1));
    }

    #[test]
    fn all_one_input_saturates_threshold() {
        let mut dtc = Dtc::new(DatcConfig::paper()).unwrap();
        // frame of 100 ones: N3=100 (minus the 1-cycle In_reg warm-up on
        // the very first frame), AVR ≈ (100 + 0.65·N2 + …)/2.
        // Frame 1: AVR ≈ 99/2 = 49.5 ≥ 48 → 15 immediately.
        let codes = run_frames(&mut dtc, &[(1000, true)]);
        assert_eq!(codes[0], 15);
        assert!(codes.iter().all(|&c| c == 15));
    }

    #[test]
    fn threshold_tracks_duty_cycle() {
        // 30 % duty → steady-state AVR = 0.3·frame·(1+0.65+0.35)/2 =
        // 0.3·frame → code 9 (level_9 = 0.30·frame, ≥ comparison).
        let cfg = DatcConfig::paper().with_frame_size(FrameSize::F100);
        let mut dtc = Dtc::new(cfg).unwrap();
        let mut last_code = 0;
        for k in 0..4000u32 {
            let bit = (k % 10) < 3; // 30 % duty
            let s = dtc.step(bit);
            if s.end_of_frame {
                last_code = s.set_vth;
            }
        }
        assert_eq!(last_code, 9, "30% duty should map to code 9");
    }

    #[test]
    fn in_reg_delays_by_one_cycle() {
        let mut dtc = Dtc::new(DatcConfig::paper()).unwrap();
        let s0 = dtc.step(true);
        assert!(!s0.d_out, "first cycle sees reset In_reg");
        let s1 = dtc.step(false);
        assert!(s1.d_out, "second cycle sees the 1 registered first");
    }

    #[test]
    fn events_fire_on_rising_edges_only() {
        let mut dtc = Dtc::new(DatcConfig::paper()).unwrap();
        let bits = [false, true, true, false, true, false, false, true];
        let mut events = 0;
        for &b in &bits {
            if dtc.step(b).event {
                events += 1;
            }
        }
        // separate rising edges in the bit stream: at indices 1, 4, 7 —
        // visible one cycle later through In_reg, last one not yet seen.
        assert_eq!(events, 2);
        // flush the last edge
        assert!(dtc.step(false).event);
    }

    #[test]
    fn history_shift_matches_listing_1() {
        // Frame counts 100, 0, 0, 0 with frame 100:
        // F1: AVR=(1·99)/2=49.5 → 15 (99 ones due to In_reg warm-up)
        // F2: AVR=(0.65·99)/2=32.2 → ≥30=level_9? level_10=33>32.2 → 9... compute:
        //   32.175 ≥ level_k·? levels: 30(k=9),33(k=10) → code 9, wait
        //   k such that 0.03·(k+1)·100 ≤ 32.175 → k+1 ≤ 10.7 → k=9.
        // F3: AVR=(0.35·99)/2=17.3 → k+1 ≤ 5.77 → k=4.
        // F4: AVR=0 → 1.
        let mut dtc = Dtc::new(DatcConfig::paper()).unwrap();
        let codes = run_frames(&mut dtc, &[(100, true), (300, false)]);
        assert_eq!(codes, vec![15, 9, 4, 1]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut dtc = Dtc::new(DatcConfig::paper()).unwrap();
        run_frames(&mut dtc, &[(500, true)]);
        assert_ne!(dtc.vth_code(), 1);
        dtc.reset();
        assert_eq!(dtc.vth_code(), 1);
        assert_eq!(dtc.ticks(), 0);
    }

    #[test]
    fn fixed_and_float_arithmetic_produce_similar_trajectories() {
        let mut fx = Dtc::new(DatcConfig::paper()).unwrap();
        let mut fl = Dtc::new(DatcConfig::paper().with_arithmetic(Arithmetic::Float)).unwrap();
        let mut max_diff = 0i16;
        for k in 0..20_000u32 {
            // pseudo-random duty cycle pattern
            let bit = (k.wrapping_mul(2654435761) >> 16) % 100 < (k / 200) % 50;
            let a = fx.step(bit);
            let b = fl.step(bit);
            if a.end_of_frame {
                max_diff = max_diff.max((i16::from(a.set_vth) - i16::from(b.set_vth)).abs());
            }
        }
        assert!(max_diff <= 1, "fixed vs float diverged by {max_diff} codes");
    }

    #[test]
    fn frame_count_advances() {
        let mut dtc = Dtc::new(DatcConfig::paper().with_frame_size(FrameSize::F200)).unwrap();
        for _ in 0..1000 {
            dtc.step(false);
        }
        assert_eq!(dtc.frames(), 5);
        assert_eq!(dtc.ticks(), 1000);
    }
}
