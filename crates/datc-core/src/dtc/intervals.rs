//! The interval look-up table (Eqn. 2 of the paper).
//!
//! `interval_level_k = step·(k+1)·frame_size`, with `step = 0.03`:
//! `level_15 = 0.48·frame`, `level_14 = 0.45·frame`, …, `level_1 =
//! 0.06·frame`, `level_0 = 0.03·frame`. The hardware stores the
//! pre-computed products for every selectable frame size "to save area and
//! computation time" (Sec. III-A) — this module is that ROM.

use crate::config::FrameSize;
use serde::{Deserialize, Serialize};

/// Fixed-point scale of the stored comparison thresholds.
///
/// The weighted average is computed as `Σ w_q·N` with weights quantised to
/// 1/256 and the paper's divide-by-2 folded in, so an AVR of `x` counts is
/// represented as `512·x`; interval levels are stored at the same scale to
/// make the comparison exact in integers.
pub const AVR_SCALE: u64 = 512;

/// The pre-computed interval table for one frame size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalTable {
    frame_len: u32,
    step: f64,
    levels_float: Vec<f64>,
    levels_scaled: Vec<u64>,
}

impl IntervalTable {
    /// Builds the table for `n_levels` DAC levels (16 in the paper) with
    /// the given step fraction.
    ///
    /// # Panics
    ///
    /// Panics when `n_levels == 0` or `step` is not positive and finite.
    pub fn new(frame_len: u32, step: f64, n_levels: usize) -> Self {
        assert!(n_levels > 0, "need at least one level");
        assert!(step.is_finite() && step > 0.0, "step must be positive");
        let levels_float: Vec<f64> = (0..n_levels)
            .map(|k| step * (k as f64 + 1.0) * frame_len as f64)
            .collect();
        let levels_scaled = levels_float
            .iter()
            .map(|l| (l * AVR_SCALE as f64).round() as u64)
            .collect();
        IntervalTable {
            frame_len,
            step,
            levels_float,
            levels_scaled,
        }
    }

    /// Builds the paper's table (step 0.03, 16 levels) for a selectable
    /// frame size.
    pub fn paper(frame: FrameSize) -> Self {
        IntervalTable::new(frame.len(), 0.03, 16)
    }

    /// Frame length in clock periods.
    pub fn frame_len(&self) -> u32 {
        self.frame_len
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels_float.len()
    }

    /// `interval_level_k` in counts (floating point, Eqn. 2).
    pub fn level_float(&self, k: usize) -> f64 {
        self.levels_float[k]
    }

    /// `interval_level_k` scaled by [`AVR_SCALE`] (the ROM word the
    /// hardware comparator tree uses).
    pub fn level_scaled(&self, k: usize) -> u64 {
        self.levels_scaled[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_levels_match_eqn_2() {
        // For frame 100: level_15 = 48, level_14 = 45, …, level_1 = 6,
        // level_0 = 3 — the constants printed in the paper.
        let t = IntervalTable::paper(FrameSize::F100);
        assert!((t.level_float(15) - 48.0).abs() < 1e-9);
        assert!((t.level_float(14) - 45.0).abs() < 1e-9);
        assert!((t.level_float(1) - 6.0).abs() < 1e-9);
        assert!((t.level_float(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn levels_scale_linearly_with_frame() {
        let t100 = IntervalTable::paper(FrameSize::F100);
        let t800 = IntervalTable::paper(FrameSize::F800);
        for k in 0..16 {
            assert!((t800.level_float(k) - 8.0 * t100.level_float(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn levels_are_strictly_increasing() {
        for frame in FrameSize::ALL {
            let t = IntervalTable::paper(frame);
            for k in 1..t.n_levels() {
                assert!(t.level_scaled(k) > t.level_scaled(k - 1));
                assert!(t.level_float(k) > t.level_float(k - 1));
            }
        }
    }

    #[test]
    fn scaled_levels_round_consistently() {
        let t = IntervalTable::paper(FrameSize::F200);
        for k in 0..16 {
            let expect = (t.level_float(k) * AVR_SCALE as f64).round() as u64;
            assert_eq!(t.level_scaled(k), expect);
        }
    }

    #[test]
    fn top_level_is_under_half_frame() {
        // 0.48·frame < 0.5·frame: even a full-scale AVR of frame/2 maps to
        // the top code — documents why the paper chose 0.48 as the cap.
        for frame in FrameSize::ALL {
            let t = IntervalTable::paper(frame);
            assert!(t.level_float(15) < 0.5 * frame.len() as f64);
        }
    }
}
