//! The streaming D-ATC kernel — the **single** cycle-accurate tick loop
//! every other entry point drives.
//!
//! [`DatcStream`] presents exactly the interface the silicon does
//! (comparator input in, event strobe + threshold code out) and is the
//! one place the comparator→DTC→DAC cycle is written down:
//!
//! * [`DatcStream::tick`] — one sample per call, for real-time /
//!   embedded-style consumers;
//! * [`DatcStream::push_chunk`] — a clock-rate sample slice into a
//!   [`TickSink`], the zero-per-tick-allocation fast path;
//! * [`DatcStream::push_signal`] — an arbitrary-rate
//!   [`Signal`] re-sampled through the exact
//!   rational [`ZohResampler`];
//!   batch [`DatcEncoder::encode`](crate::datc::DatcEncoder) is a thin
//!   driver over this.

use crate::comparator::Comparator;
use crate::config::DatcConfig;
use crate::dac::Dac;
use crate::dtc::{Dtc, DtcStep};
use crate::encoder::TickSink;
use crate::error::CoreError;
use crate::event::Event;
use datc_signal::resample::ZohResampler;
use datc_signal::Signal;

/// What one clock tick of the streaming encoder produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTick {
    /// The event fired this tick, if any (tagged with the code in force
    /// when the comparator decision was sampled).
    pub event: Option<Event>,
    /// The threshold code after this tick.
    pub set_vth: u8,
    /// The threshold voltage after this tick.
    pub vth_volts: f64,
    /// `true` when this tick closed a frame.
    pub end_of_frame: bool,
}

/// Streaming D-ATC encoder: push comparator-input samples at the system
/// clock rate.
///
/// # Example
///
/// ```
/// use datc_core::stream::DatcStream;
/// use datc_core::config::DatcConfig;
///
/// let mut stream = DatcStream::new(DatcConfig::paper())?;
/// let mut events = 0;
/// for k in 0..2000u32 {
///     let x = 0.4 * ((k as f64) * 0.2).sin().abs();
///     if stream.tick(x).event.is_some() {
///         events += 1;
///     }
/// }
/// assert!(events > 0);
/// # Ok::<(), datc_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DatcStream {
    dtc: Dtc,
    comparator: Comparator,
    /// Code→voltage LUT precomputed at construction (the DAC transfer
    /// function); the per-tick kernel does one array index instead of a
    /// fallible `Dac::voltage` call.
    vth_lut: Vec<f64>,
    /// `1 / clock_hz`, hoisted out of the tick loops: event timestamps
    /// are a multiply, never a division.
    tick_period_s: f64,
    tick: u64,
}

impl DatcStream {
    /// Creates a streaming encoder with an ideal comparator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(config: DatcConfig) -> Result<Self, CoreError> {
        let dac = Dac::new(config.dac_bits, config.vref)?;
        Ok(DatcStream {
            dtc: Dtc::new(config)?,
            comparator: Comparator::ideal(),
            vth_lut: dac.voltage_table(),
            tick_period_s: 1.0 / config.clock_hz,
            tick: 0,
        })
    }

    /// Replaces the comparator model.
    pub fn with_comparator(mut self, comparator: Comparator) -> Self {
        self.comparator = comparator;
        self
    }

    /// The encoder configuration.
    pub fn config(&self) -> &DatcConfig {
        self.dtc.config()
    }

    /// Current threshold voltage.
    pub fn vth_volts(&self) -> f64 {
        self.vth_lut[usize::from(self.dtc.vth_code())]
    }

    /// Ticks executed.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The shared kernel: one comparator + DTC cycle on input `x_volts`.
    /// Returns the tick index the cycle ran at and the raw DTC step.
    ///
    /// Branch-free in the threshold path: the code→voltage conversion is
    /// one LUT index (DTC codes are bounded by construction, so the
    /// bounds check never fires).
    #[inline]
    fn step_core(&mut self, x_volts: f64) -> (u64, DtcStep) {
        let vth = self.vth_lut[usize::from(self.dtc.vth_code())];
        let d_in = self.comparator.compare(x_volts, vth);
        let step = self.dtc.step(d_in);
        let k = self.tick;
        self.tick += 1;
        (k, step)
    }

    /// Processes one system-clock tick with the instantaneous rectified
    /// input voltage `x_volts`.
    pub fn tick(&mut self, x_volts: f64) -> StreamTick {
        let period = self.tick_period_s;
        let (k, step) = self.step_core(x_volts);
        let event = step.event.then_some(Event {
            tick: k,
            time_s: k as f64 * period,
            vth_code: Some(step.sampled_code),
        });
        StreamTick {
            event,
            set_vth: step.set_vth,
            vth_volts: self.vth_lut[usize::from(step.set_vth)],
            end_of_frame: step.end_of_frame,
        }
    }

    /// Runs one kernel cycle per sample of `chunk` (already at the system
    /// clock rate), reporting each tick to `sink`.
    ///
    /// This is the hot path: per tick it performs the comparator + DTC
    /// work and one `sink.on_tick` call — no `StreamTick`, no `Option`,
    /// no allocation. Chunks may be any length; state carries across
    /// calls exactly as across [`tick`](DatcStream::tick) calls.
    pub fn push_chunk<S: TickSink>(&mut self, chunk: &[f64], sink: &mut S) {
        for &x in chunk {
            let (k, step) = self.step_core(x);
            sink.on_tick(k, &step);
        }
    }

    /// Drives the kernel over a whole [`Signal`] of any sample rate,
    /// zero-order-holding it onto the system clock through the exact
    /// rational [`ZohResampler`], reporting each tick to `sink`.
    ///
    /// Returns the number of ticks executed. Batch
    /// [`DatcEncoder::encode`](crate::datc::DatcEncoder) is this plus a
    /// [`DatcOutputBuilder`](crate::encoder::DatcOutputBuilder) sink.
    pub fn push_signal<S: TickSink>(&mut self, signal: &Signal, sink: &mut S) -> u64 {
        let clock = self.dtc.config().clock_hz;
        let zoh = ZohResampler::new(signal.sample_rate(), clock);
        let n = signal.len();
        let n_ticks = zoh.ticks_for_len(n);
        let samples = signal.samples();
        // `ticks_for_len` guarantees `index(k) < n` for every executed
        // tick, so no per-tick clamp is needed in the loop.
        for k in 0..n_ticks {
            let x = samples[zoh.index(k)];
            let (tick, step) = self.step_core(x);
            sink.on_tick(tick, &step);
        }
        n_ticks
    }

    /// Resets the encoder to power-on state.
    pub fn reset(&mut self) {
        self.dtc.reset();
        self.comparator.reset();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datc::DatcEncoder;
    use crate::encoder::{EventSink, SpikeEncoder, TraceLevel};
    use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};

    fn test_semg(seconds: f64) -> Signal {
        let fs = 2500.0;
        let force = ForceProfile::mvc_protocol().samples(fs, seconds);
        SemgGenerator::new(SemgModel::modulated_noise(), fs)
            .generate(&force, 33)
            .to_scaled(0.5)
            .to_rectified()
    }

    #[test]
    fn stream_matches_batch_encoder_exactly() {
        let semg = test_semg(5.0);
        let config = DatcConfig::paper();
        let batch = DatcEncoder::new(config).encode(&semg);

        let mut stream = DatcStream::new(config).unwrap();
        let zoh = ZohResampler::new(semg.sample_rate(), config.clock_hz);
        let n_ticks = zoh.ticks_for_len(semg.len());
        let mut events = Vec::new();
        let mut vth_trace = Vec::new();
        for k in 0..n_ticks {
            let idx = zoh.index(k).min(semg.len() - 1);
            let out = stream.tick(semg.samples()[idx]);
            if let Some(e) = out.event {
                events.push(e);
            }
            vth_trace.push(out.set_vth);
        }
        assert_eq!(events, batch.events.events());
        assert_eq!(vth_trace, batch.vth_code_trace);
    }

    #[test]
    fn push_chunk_matches_per_tick_calls() {
        let config = DatcConfig::paper();
        let samples: Vec<f64> = (0..5000)
            .map(|k| 0.5 * ((k as f64) * 0.07).sin().abs())
            .collect();

        let mut by_tick = DatcStream::new(config).unwrap();
        let mut tick_events = Vec::new();
        for &x in &samples {
            if let Some(e) = by_tick.tick(x).event {
                tick_events.push(e);
            }
        }

        let mut by_chunk = DatcStream::new(config).unwrap();
        let mut sink = EventSink::new(config.clock_hz);
        // uneven chunk boundaries must not matter
        for chunk in samples.chunks(333) {
            by_chunk.push_chunk(chunk, &mut sink);
        }
        assert_eq!(sink.events(), tick_events.as_slice());
        assert_eq!(by_chunk.ticks(), by_tick.ticks());
    }

    #[test]
    fn push_signal_matches_batch_events() {
        let semg = test_semg(3.0);
        let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
        let batch = DatcEncoder::new(config).encode(&semg);

        let mut stream = DatcStream::new(config).unwrap();
        let mut sink = EventSink::new(config.clock_hz);
        let n_ticks = stream.push_signal(&semg, &mut sink);
        assert_eq!(n_ticks, stream.ticks());
        assert_eq!(sink.events(), batch.events.events());
    }

    #[test]
    fn reset_restarts_the_stream() {
        let mut s = DatcStream::new(DatcConfig::paper()).unwrap();
        for _ in 0..500 {
            s.tick(0.9);
        }
        assert!(s.ticks() == 500);
        let code_before = s.tick(0.9).set_vth;
        assert!(code_before > 1);
        s.reset();
        assert_eq!(s.ticks(), 0);
        assert!((s.vth_volts() - 0.0625).abs() < 1e-12, "back to code 1");
    }

    #[test]
    fn events_are_timestamped_on_the_clock() {
        let mut s = DatcStream::new(DatcConfig::paper()).unwrap();
        let mut first_event = None;
        for k in 0..300u64 {
            let x = if k % 3 == 0 { 0.9 } else { 0.0 };
            if let Some(e) = s.tick(x).event {
                first_event = Some(e);
                break;
            }
        }
        let e = first_event.expect("toggling input must fire");
        assert!((e.time_s - e.tick as f64 / 2000.0).abs() < 1e-12);
    }
}
