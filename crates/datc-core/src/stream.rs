//! Real-time streaming D-ATC encoder.
//!
//! [`DatcEncoder`](crate::datc::DatcEncoder) consumes a whole recorded
//! [`Signal`](datc_signal::Signal); embedded and real-time users instead
//! feed one analog sample per DTC clock tick through [`DatcStream`] —
//! exactly the interface the silicon presents (comparator input in,
//! event strobe + threshold code out).

use crate::comparator::Comparator;
use crate::config::DatcConfig;
use crate::dac::Dac;
use crate::dtc::Dtc;
use crate::error::CoreError;
use crate::event::Event;

/// What one clock tick of the streaming encoder produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTick {
    /// The event fired this tick, if any (tagged with the code in force
    /// when the comparator decision was sampled).
    pub event: Option<Event>,
    /// The threshold code after this tick.
    pub set_vth: u8,
    /// The threshold voltage after this tick.
    pub vth_volts: f64,
    /// `true` when this tick closed a frame.
    pub end_of_frame: bool,
}

/// Streaming D-ATC encoder: push one comparator-input sample per system
/// clock tick.
///
/// # Example
///
/// ```
/// use datc_core::stream::DatcStream;
/// use datc_core::config::DatcConfig;
///
/// let mut stream = DatcStream::new(DatcConfig::paper())?;
/// let mut events = 0;
/// for k in 0..2000u32 {
///     let x = 0.4 * ((k as f64) * 0.2).sin().abs();
///     if stream.tick(x).event.is_some() {
///         events += 1;
///     }
/// }
/// assert!(events > 0);
/// # Ok::<(), datc_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DatcStream {
    dtc: Dtc,
    dac: Dac,
    comparator: Comparator,
    tick: u64,
}

impl DatcStream {
    /// Creates a streaming encoder with an ideal comparator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(config: DatcConfig) -> Result<Self, CoreError> {
        Ok(DatcStream {
            dtc: Dtc::new(config)?,
            dac: Dac::new(config.dac_bits, config.vref)?,
            comparator: Comparator::ideal(),
            tick: 0,
        })
    }

    /// Replaces the comparator model.
    pub fn with_comparator(mut self, comparator: Comparator) -> Self {
        self.comparator = comparator;
        self
    }

    /// The encoder configuration.
    pub fn config(&self) -> &DatcConfig {
        self.dtc.config()
    }

    /// Current threshold voltage.
    pub fn vth_volts(&self) -> f64 {
        self.dac
            .voltage(u16::from(self.dtc.vth_code()))
            .expect("DTC codes are bounded")
    }

    /// Ticks executed.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Processes one system-clock tick with the instantaneous rectified
    /// input voltage `x_volts`.
    pub fn tick(&mut self, x_volts: f64) -> StreamTick {
        let vth = self.vth_volts();
        let d_in = self.comparator.compare(x_volts, vth);
        let step = self.dtc.step(d_in);
        let clock = self.dtc.config().clock_hz;
        let event = step.event.then(|| Event {
            tick: self.tick,
            time_s: self.tick as f64 / clock,
            vth_code: Some(step.sampled_code),
        });
        self.tick += 1;
        StreamTick {
            event,
            set_vth: step.set_vth,
            vth_volts: self
                .dac
                .voltage(u16::from(step.set_vth))
                .expect("DTC codes are bounded"),
            end_of_frame: step.end_of_frame,
        }
    }

    /// Resets the encoder to power-on state.
    pub fn reset(&mut self) {
        self.dtc.reset();
        self.comparator.reset();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datc::DatcEncoder;
    use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};

    #[test]
    fn stream_matches_batch_encoder_exactly() {
        let fs = 2500.0;
        let force = ForceProfile::mvc_protocol().samples(fs, 5.0);
        let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
            .generate(&force, 33)
            .to_scaled(0.5)
            .to_rectified();

        let config = DatcConfig::paper();
        let batch = DatcEncoder::new(config).encode(&semg);

        let mut stream = DatcStream::new(config).unwrap();
        let n_ticks = (semg.duration() * config.clock_hz).floor() as u64;
        let mut events = Vec::new();
        let mut vth_trace = Vec::new();
        for k in 0..n_ticks {
            let t = k as f64 / config.clock_hz;
            let idx = ((t * fs) as usize).min(semg.len() - 1);
            let out = stream.tick(semg.samples()[idx]);
            if let Some(e) = out.event {
                events.push(e);
            }
            vth_trace.push(out.set_vth);
        }
        assert_eq!(events, batch.events.events());
        assert_eq!(vth_trace, batch.vth_code_trace);
    }

    #[test]
    fn reset_restarts_the_stream() {
        let mut s = DatcStream::new(DatcConfig::paper()).unwrap();
        for _ in 0..500 {
            s.tick(0.9);
        }
        assert!(s.ticks() == 500);
        let code_before = s.tick(0.9).set_vth;
        assert!(code_before > 1);
        s.reset();
        assert_eq!(s.ticks(), 0);
        assert!((s.vth_volts() - 0.0625).abs() < 1e-12, "back to code 1");
    }

    #[test]
    fn events_are_timestamped_on_the_clock() {
        let mut s = DatcStream::new(DatcConfig::paper()).unwrap();
        let mut first_event = None;
        for k in 0..300u64 {
            let x = if k % 3 == 0 { 0.9 } else { 0.0 };
            if let Some(e) = s.tick(x).event {
                first_event = Some(e);
                break;
            }
        }
        let e = first_event.expect("toggling input must fire");
        assert!((e.time_s - e.tick as f64 / 2000.0).abs() < 1e-12);
    }
}
