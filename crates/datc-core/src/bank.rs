//! The struct-of-arrays multi-channel D-ATC kernel.
//!
//! [`BankStream`] advances N channels through the comparator → DTC →
//! DAC cycle **per input frame** in one cache-friendly pass: all
//! per-channel state lives in parallel arrays (threshold voltages,
//! frame counters, comparator bits), the frame countdown and interval
//! ROM are shared scalars, and the code→voltage conversion is a LUT
//! index. The per-channel inner step is branch-free outside the rare
//! end-of-frame and event cases, which is what lets a single core chew
//! through hundreds of millions of channel·ticks per second — see
//! `BENCH_fleet.json` at the workspace root for measured numbers.
//!
//! Three performance layers stack on the SoA state:
//!
//! * **Fused gather + compare** ([`BankStream::push_signals`]): the ZOH
//!   index mapping is resolved once per segment and each channel's
//!   samples are gathered *inside* the compare kernel — on AVX2 hosts
//!   with `vgatherqpd` + `cmp_pd` + `movmskpd` (runtime-detected), with
//!   a bit-identical scalar fallback (same masks, same strict-`>` tie
//!   behaviour, `false` against NaN).
//! * **Cache tiling** ([`TilePolicy`]): large banks process channels in
//!   L2-sized tiles over bounded time segments, so a 64-channel fleet
//!   streams a handful of input arrays at a time instead of thrashing
//!   the prefetcher with 64 concurrent streams.
//! * **SoA non-ideal comparators** ([`BankStream::with_comparators`]):
//!   per-channel offset / hysteresis / noise
//!   ([`Comparator`]) run vectorised — noise
//!   comes from the counter-based lane (a pure function of seed and
//!   tick), hysteresis is resolved 64 ticks at a time through a
//!   carry-propagation identity — so non-ideal fleets keep the bank
//!   speedup instead of falling back to per-channel streams.
//!
//! Results are **bit-exact** with N independent
//! [`DatcStream`](crate::stream::DatcStream)s carrying the same
//! comparator configs and fed the same per-channel samples —
//! property-tested in `tests/` at the workspace root across SIMD
//! policies, tile shapes and comparator models. The multi-threaded
//! sharding driver over this kernel is `FleetRunner` in the
//! `datc-engine` crate.
//!
//! # Example
//!
//! ```
//! use datc_core::bank::{BankCountingSink, BankStream};
//! use datc_core::config::DatcConfig;
//!
//! let mut bank = BankStream::new(DatcConfig::paper(), 4)?;
//! let mut sink = BankCountingSink::new(4);
//! for k in 0..2000u32 {
//!     let t = f64::from(k) * 0.2;
//!     // four phase-shifted channels, one frame per tick
//!     let frame = [
//!         0.4 * t.sin().abs(),
//!         0.4 * (t + 0.5).sin().abs(),
//!         0.4 * (t + 1.0).sin().abs(),
//!         0.4 * (t + 1.5).sin().abs(),
//!     ];
//!     bank.push_frame(&frame, &mut sink);
//! }
//! assert!(sink.channel(0).events > 0);
//! # Ok::<(), datc_core::CoreError>(())
//! ```

use crate::comparator::{gaussian_at, Comparator};
use crate::config::{Arithmetic, DatcConfig};
use crate::dac::Dac;
use crate::dtc::fixed_point::{
    avr_float, avr_scaled, predict_code_fixed, predict_code_float, quantize_weights,
};
use crate::dtc::intervals::IntervalTable;
use crate::dtc::DtcStep;
use crate::encoder::{CountingSink, TickSink};
use crate::error::CoreError;
use crate::event::Event;
use datc_signal::resample::ZohResampler;
use datc_signal::Signal;

/// Consumer of per-channel, per-tick results from a [`BankStream`].
///
/// The multi-channel analogue of [`TickSink`]:
/// called once per channel per system-clock tick. Within one channel,
/// calls arrive in tick order; the interleaving **across** channels is
/// unspecified — the planar drivers run each channel over a whole
/// frame-bounded span (registers-resident inner loop) before moving to
/// the next channel, and cache tiling additionally groups channels into
/// tiles that each replay a run of spans. Implementations should be
/// `#[inline]`-friendly — the kernel loop is monomorphised over the
/// sink.
pub trait BankSink {
    /// `true` (the default) delivers every tick through
    /// [`on_tick`](BankSink::on_tick). Sinks that only consume events,
    /// frame decisions and aggregate counters set this to `false`, which
    /// lets the planar drivers run an **event-sparse** inner loop: quiet
    /// ticks cost a register add, and the sink hears only
    /// [`on_event`](BankSink::on_event), [`on_frame`](BankSink::on_frame)
    /// and per-span [`on_span`](BankSink::on_span) aggregates.
    ///
    /// A sink must account identically through either delivery mode —
    /// the tick-major drivers (`push_frame`, `push_interleaved`) always
    /// use `on_tick`.
    const EVERY_TICK: bool = true;

    /// Called for `channel` at tick `tick` with the channel's DTC step.
    fn on_tick(&mut self, channel: usize, tick: u64, step: &DtcStep);

    /// Sparse mode: a rising edge fired on `channel` at `tick` while
    /// threshold `code` was in force.
    #[inline]
    fn on_event(&mut self, _channel: usize, _tick: u64, _code: u8) {}

    /// Sparse mode: `channel` closed a frame at `tick`, deciding
    /// `set_vth`.
    #[inline]
    fn on_frame(&mut self, _channel: usize, _tick: u64, _set_vth: u8) {}

    /// Sparse mode: `channel` advanced `ticks` ticks of which `ones` had
    /// the comparator bit high (events/frames already reported
    /// separately).
    #[inline]
    fn on_span(&mut self, _channel: usize, _ticks: u64, _ones: u64) {}
}

/// Per-channel scalar counters — one [`CountingSink`] per channel, the
/// counters-only [`BankSink`] (duty cycle per channel comes free via
/// [`CountingSink::duty_cycle`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankCountingSink {
    channels: Vec<CountingSink>,
}

impl BankCountingSink {
    /// Creates counters for `n` channels.
    pub fn new(n: usize) -> Self {
        BankCountingSink {
            channels: vec![CountingSink::default(); n],
        }
    }

    /// The counters of `channel`.
    pub fn channel(&self, channel: usize) -> &CountingSink {
        &self.channels[channel]
    }

    /// All per-channel counters.
    pub fn channels(&self) -> &[CountingSink] {
        &self.channels
    }

    /// Events summed over every channel.
    pub fn total_events(&self) -> u64 {
        self.channels.iter().map(|c| c.events).sum()
    }
}

impl BankSink for BankCountingSink {
    #[inline]
    fn on_tick(&mut self, channel: usize, tick: u64, step: &DtcStep) {
        self.channels[channel].on_tick(tick, step);
    }
}

/// A [`BankSink`] recording per-channel event lists plus the duty-cycle
/// counters — everything `FleetRunner` needs to assemble per-channel
/// `DatcOutput`s.
#[derive(Debug, Clone)]
pub struct BankEventSink {
    tick_period_s: f64,
    events: Vec<Vec<Event>>,
    ones: Vec<u64>,
    ticks: u64,
}

impl BankEventSink {
    /// Creates a sink for `n` channels of a kernel clocked at `clock_hz`.
    pub fn new(clock_hz: f64, n: usize) -> Self {
        BankEventSink {
            tick_period_s: 1.0 / clock_hz,
            events: vec![Vec::new(); n],
            ones: vec![0; n],
            ticks: 0,
        }
    }

    /// Pre-reserves capacity for `per_channel` events on every channel,
    /// sparing the hot loop the growth-reallocation copies of long
    /// recordings.
    pub fn reserve_events(&mut self, per_channel: usize) {
        for evs in &mut self.events {
            evs.reserve(per_channel);
        }
    }

    /// Events recorded so far for `channel`.
    pub fn events(&self, channel: usize) -> &[Event] {
        &self.events[channel]
    }

    /// Ticks with the comparator high, per channel.
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// Ticks observed per channel.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Consumes the sink into `(per-channel events, per-channel ones,
    /// ticks)` for callers assembling richer outputs.
    pub fn into_parts(self) -> (Vec<Vec<Event>>, Vec<u64>, u64) {
        (self.events, self.ones, self.ticks)
    }

    /// Clears all recorded events and counters while keeping the event
    /// buffers' capacity — lets a long-running driver recycle one sink
    /// across encodes instead of re-faulting fresh allocations each
    /// time.
    pub fn clear(&mut self) {
        for evs in &mut self.events {
            evs.clear();
        }
        self.ones.fill(0);
        self.ticks = 0;
    }
}

impl BankSink for BankEventSink {
    // Events and counters only — unlock the event-sparse planar loop.
    const EVERY_TICK: bool = false;

    #[inline]
    fn on_tick(&mut self, channel: usize, tick: u64, step: &DtcStep) {
        self.ticks += u64::from(channel == 0);
        self.ones[channel] += u64::from(step.d_out);
        if step.event {
            self.on_event(channel, tick, step.sampled_code);
        }
    }

    #[inline]
    fn on_event(&mut self, channel: usize, tick: u64, code: u8) {
        self.events[channel].push(Event {
            tick,
            time_s: tick as f64 * self.tick_period_s,
            vth_code: Some(code),
        });
    }

    #[inline]
    fn on_span(&mut self, channel: usize, ticks: u64, ones: u64) {
        self.ticks += if channel == 0 { ticks } else { 0 };
        self.ones[channel] += ones;
    }
}

/// Which word-packing compare implementation the bank may use.
///
/// The SIMD paths are **bit-identical** to the scalar fallback (strict
/// `>`, `false` against NaN — `_CMP_GT_OQ` semantics match Rust's `>`
/// exactly), so this knob exists for benchmarking the speedup and for
/// equivalence tests, not for correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Use whatever the CPU supports (runtime-detected AVX for packed
    /// compares, AVX2 for the fused gather + compare). The default.
    #[default]
    Auto,
    /// Always run the restructured scalar kernels.
    ForceScalar,
}

/// Cache-tiling policy for the planar/signal drivers.
///
/// A bank with many channels cannot stream every channel's input
/// concurrently without spilling the combined working set out of L2 (and
/// past the prefetcher's stream-tracking budget). Tiling splits the
/// channels into tiles of at most
/// [`max_tile_channels`](TilePolicy::max_tile_channels) and replays each
/// input **segment** (a run of frame-bounded spans sized so one tile's
/// source bytes fit [`target_tile_bytes`](TilePolicy::target_tile_bytes))
/// tile by tile. Results are bit-identical for every policy — only the
/// traversal order over (channel, tick) changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePolicy {
    /// Channels processed per tile (`usize::MAX` = all channels in one
    /// tile, i.e. no channel blocking).
    pub max_tile_channels: usize,
    /// Source-byte budget per tile per segment (`usize::MAX` = segments
    /// as long as the input allows).
    pub target_tile_bytes: usize,
}

impl TilePolicy {
    /// The default: 16-channel tiles over ≈ 256 KiB segments — sized for
    /// a conservative per-core L2 share and well inside hardware
    /// prefetcher stream budgets.
    pub fn auto() -> Self {
        TilePolicy {
            max_tile_channels: 16,
            target_tile_bytes: 256 * 1024,
        }
    }

    /// No tiling: every channel advances span by span across the whole
    /// input (the pre-tiling traversal; useful for measuring what tiling
    /// buys).
    pub fn none() -> Self {
        TilePolicy {
            max_tile_channels: usize::MAX,
            target_tile_bytes: usize::MAX,
        }
    }
}

impl Default for TilePolicy {
    fn default() -> Self {
        TilePolicy::auto()
    }
}

/// Resolved CPU capabilities for the packing kernels.
#[derive(Debug, Clone, Copy)]
struct SimdCaps {
    /// Packed `cmp_pd` + `movmskpd` over contiguous lanes.
    avx: bool,
    /// `vgatherqpd`-fused gather + compare.
    avx2: bool,
}

impl SimdCaps {
    fn detect(policy: SimdPolicy) -> SimdCaps {
        match policy {
            SimdPolicy::ForceScalar => SimdCaps {
                avx: false,
                avx2: false,
            },
            SimdPolicy::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    SimdCaps {
                        avx: std::arch::is_x86_feature_detected!("avx"),
                        avx2: std::arch::is_x86_feature_detected!("avx2"),
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    SimdCaps {
                        avx: false,
                        avx2: false,
                    }
                }
            }
        }
    }
}

/// Struct-of-arrays non-ideal comparator parameters (one lane per
/// channel).
#[derive(Debug, Clone)]
struct BankComparators {
    offset: Vec<f64>,
    /// Half the hysteresis width — the quantity
    /// [`Comparator::compare`] actually adds/subtracts.
    half: Vec<f64>,
    sigma: Vec<f64>,
    seed: Vec<u64>,
}

/// One channel's comparator parameters, copied to registers for a span.
#[derive(Debug, Clone, Copy)]
struct ChannelComp {
    offset: f64,
    half: f64,
    sigma: f64,
    seed: u64,
}

impl BankComparators {
    /// Channel `c`'s parameters — `None` when the channel is effectively
    /// ideal (all-zero lane), so mixed banks keep the fused ideal kernel
    /// for their ideal majority. Bit-identical either way:
    /// `x + 0.0 > vth ± 0.0` is `x > vth` for every `x`.
    #[inline]
    fn channel(&self, c: usize) -> Option<ChannelComp> {
        let cc = ChannelComp {
            offset: self.offset[c],
            half: self.half[c],
            sigma: self.sigma[c],
            seed: self.seed[c],
        };
        (cc.offset != 0.0 || cc.half != 0.0 || cc.sigma > 0.0).then_some(cc)
    }
}

/// A span's worth of per-tick comparator-input samples. The kernels are
/// monomorphised over this, so the contiguous-slice and the fused-gather
/// drives share one span implementation with zero dispatch cost.
trait SpanFeed {
    /// Number of ticks in the span.
    fn len(&self) -> usize;
    /// Sample at tick offset `j` within the span.
    fn get(&self, j: usize) -> f64;
    /// Packs `w ≤ 64` strict compare decisions starting at offset `i`
    /// (bit `j` = `get(i + j) > vth`).
    fn pack(&self, i: usize, w: usize, vth: f64, caps: SimdCaps) -> u64;
    /// Copies `dst.len()` samples starting at offset `i` into `dst`.
    fn load(&self, i: usize, dst: &mut [f64]);
}

/// Contiguous clock-rate samples.
struct SliceFeed<'a>(&'a [f64]);

impl SpanFeed for SliceFeed<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn get(&self, j: usize) -> f64 {
        self.0[j]
    }

    #[inline]
    fn pack(&self, i: usize, w: usize, vth: f64, caps: SimdCaps) -> u64 {
        pack_block(&self.0[i..i + w], vth, caps)
    }

    #[inline]
    fn load(&self, i: usize, dst: &mut [f64]) {
        dst.copy_from_slice(&self.0[i..i + dst.len()]);
    }
}

/// ZOH-gathered samples: `samples[idx[j]]` is the comparator input at
/// span offset `j`. On AVX2 the gather and the compare fuse into one
/// `vgatherqpd` + `cmp_pd` + `movmskpd` pass with no intermediate store.
struct GatherFeed<'a> {
    samples: &'a [f64],
    idx: &'a [i64],
}

impl SpanFeed for GatherFeed<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.idx.len()
    }

    #[inline]
    fn get(&self, j: usize) -> f64 {
        self.samples[self.idx[j] as usize]
    }

    #[inline]
    fn pack(&self, i: usize, w: usize, vth: f64, caps: SimdCaps) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if w == 64 && caps.avx2 {
            // SAFETY: AVX2 confirmed at runtime; every index is
            // validated against `samples.len()` by the drivers (the ZOH
            // contract `ticks_for_len` ⇒ `index(k) < len`).
            return unsafe { pack64_gather_avx2(self.samples.as_ptr(), &self.idx[i..i + 64], vth) };
        }
        let mut cmp = 0u64;
        for (j, &ix) in self.idx[i..i + w].iter().enumerate() {
            cmp |= u64::from(self.samples[ix as usize] > vth) << j;
        }
        let _ = caps;
        cmp
    }

    #[inline]
    fn load(&self, i: usize, dst: &mut [f64]) {
        for (d, &ix) in dst.iter_mut().zip(&self.idx[i..]) {
            *d = self.samples[ix as usize];
        }
    }
}

/// N-channel streaming D-ATC encoder with struct-of-arrays state.
///
/// All channels share one configuration (clock, frame size, DAC, weights
/// — the realistic multi-electrode case) and advance in lock-step, so
/// the frame countdown, tick counter, interval ROM and voltage LUT are
/// shared scalars; only the genuinely per-channel state (comparator
/// bits, frame counts, history, threshold codes and voltages) is
/// replicated, each kind in its own parallel array.
///
/// Channels default to the **ideal** comparator (the paper's operating
/// point); per-channel offset/hysteresis/noise models attach through
/// [`with_comparators`](BankStream::with_comparators) and run inside the
/// same SoA kernels, bit-exact with N independent
/// [`DatcStream`](crate::stream::DatcStream)s carrying the same configs.
#[derive(Debug, Clone)]
pub struct BankStream {
    config: DatcConfig,
    table: IntervalTable,
    weights_q: (u64, u64, u64),
    vth_lut: Vec<f64>,
    frame_len: u32,
    max_code: u8,
    caps: SimdCaps,
    simd: SimdPolicy,
    tiling: TilePolicy,
    comparators: Option<BankComparators>,
    // --- struct-of-arrays per-channel state ---
    /// Metastability register (`In_reg`) per channel — also the
    /// hysteresis state (both are "the comparator's last raw decision").
    in_reg: Vec<bool>,
    /// Previous `D_out` per channel, for rising-edge detection.
    d_prev: Vec<bool>,
    /// Ones counted in the current frame, per channel.
    counter: Vec<u32>,
    /// Previous-frame count (`N_one2`) per channel.
    n2: Vec<u32>,
    /// Frame-before-that count (`N_one1`) per channel.
    n1: Vec<u32>,
    /// Current threshold code per channel.
    set_vth: Vec<u8>,
    /// Current threshold voltage per channel (code through the LUT,
    /// refreshed only at frame boundaries).
    vth_volts: Vec<f64>,
    // --- shared lock-step scalars ---
    tick_in_frame: u32,
    tick: u64,
    frames: u64,
}

impl BankStream {
    /// Creates an `n`-channel bank kernel with ideal comparators.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// validation or `channels` is zero.
    pub fn new(config: DatcConfig, channels: usize) -> Result<Self, CoreError> {
        config.validate()?;
        if channels == 0 {
            return Err(CoreError::InvalidConfig {
                field: "channels",
                reason: "bank needs at least one channel".into(),
            });
        }
        let dac = Dac::new(config.dac_bits, config.vref)?;
        let vth_lut = dac.voltage_table();
        let initial_volts = vth_lut[usize::from(config.initial_code)];
        Ok(BankStream {
            table: IntervalTable::new(
                config.frame_size.len(),
                config.interval_step,
                1usize << config.dac_bits,
            ),
            weights_q: quantize_weights(config.weights),
            vth_lut,
            frame_len: config.frame_size.len(),
            max_code: config.max_code(),
            caps: SimdCaps::detect(SimdPolicy::Auto),
            simd: SimdPolicy::Auto,
            tiling: TilePolicy::default(),
            comparators: None,
            in_reg: vec![false; channels],
            d_prev: vec![false; channels],
            counter: vec![0; channels],
            n2: vec![0; channels],
            n1: vec![0; channels],
            set_vth: vec![config.initial_code; channels],
            vth_volts: vec![initial_volts; channels],
            tick_in_frame: 0,
            tick: 0,
            frames: 0,
            config,
        })
    }

    /// Attaches per-channel comparator models (offset / hysteresis /
    /// noise). Each comparator's *configuration* is taken at power-on
    /// state — runtime hysteresis state and noise position restart from
    /// zero, exactly as a fresh
    /// [`DatcStream::with_comparator`](crate::stream::DatcStream::with_comparator)
    /// does. A slice of all-ideal comparators keeps the branch-free
    /// ideal kernels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the slice length
    /// differs from the channel count or a parameter is non-finite.
    pub fn with_comparators(mut self, comparators: &[Comparator]) -> Result<Self, CoreError> {
        if comparators.len() != self.channels() {
            return Err(CoreError::InvalidConfig {
                field: "comparators",
                reason: format!(
                    "need one comparator per channel ({}), got {}",
                    self.channels(),
                    comparators.len()
                ),
            });
        }
        if comparators.iter().any(|c| {
            !(c.offset_v().is_finite()
                && c.hysteresis_v().is_finite()
                && c.noise_sigma_v().is_finite())
        }) {
            return Err(CoreError::InvalidConfig {
                field: "comparators",
                reason: "offset, hysteresis and noise sigma must be finite".into(),
            });
        }
        if comparators.iter().all(Comparator::is_ideal) {
            self.comparators = None;
            return Ok(self);
        }
        self.comparators = Some(BankComparators {
            offset: comparators.iter().map(Comparator::offset_v).collect(),
            half: comparators.iter().map(|c| c.hysteresis_v() / 2.0).collect(),
            sigma: comparators.iter().map(Comparator::noise_sigma_v).collect(),
            seed: comparators.iter().map(Comparator::noise_seed).collect(),
        });
        Ok(self)
    }

    /// Overrides the SIMD policy (default
    /// [`Auto`](SimdPolicy::Auto)) — for benches and equivalence tests;
    /// every policy is bit-identical.
    pub fn with_simd_policy(mut self, policy: SimdPolicy) -> Self {
        self.simd = policy;
        self.caps = SimdCaps::detect(policy);
        self
    }

    /// Overrides the cache-tiling policy (default
    /// [`TilePolicy::auto`]) — bit-identical for every policy.
    pub fn with_tiling(mut self, tiling: TilePolicy) -> Self {
        self.tiling = tiling;
        self
    }

    /// The shared configuration.
    pub fn config(&self) -> &DatcConfig {
        &self.config
    }

    /// The active SIMD policy.
    pub fn simd_policy(&self) -> SimdPolicy {
        self.simd
    }

    /// The active tiling policy.
    pub fn tiling(&self) -> TilePolicy {
        self.tiling
    }

    /// `true` when at least one channel runs a non-ideal comparator.
    pub fn has_nonideal_comparators(&self) -> bool {
        self.comparators.is_some()
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.set_vth.len()
    }

    /// Ticks executed (per channel — channels advance in lock-step).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Frames completed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Current threshold codes, one per channel.
    pub fn vth_codes(&self) -> &[u8] {
        &self.set_vth
    }

    /// Resets every channel to power-on state (comparator models keep
    /// their configuration; hysteresis state clears and noise lanes
    /// rewind, because noise is indexed by the tick counter).
    pub fn reset(&mut self) {
        let initial_volts = self.vth_lut[usize::from(self.config.initial_code)];
        self.in_reg.fill(false);
        self.d_prev.fill(false);
        self.counter.fill(0);
        self.n2.fill(0);
        self.n1.fill(0);
        self.set_vth.fill(self.config.initial_code);
        self.vth_volts.fill(initial_volts);
        self.tick_in_frame = 0;
        self.tick = 0;
        self.frames = 0;
    }

    /// Advances every channel by one system-clock tick; `frame[c]` is the
    /// instantaneous rectified input voltage of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics when `frame.len()` differs from the channel count.
    #[inline]
    pub fn push_frame<S: BankSink>(&mut self, frame: &[f64], sink: &mut S) {
        assert_eq!(frame.len(), self.channels(), "one sample per channel");
        self.step_all(sink, |c| frame[c]);
    }

    /// Advances all channels over `data`, interpreted as consecutive
    /// channel-major frames (`data[k·N + c]` is tick `k`, channel `c`).
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not a multiple of the channel count.
    pub fn push_interleaved<S: BankSink>(&mut self, data: &[f64], sink: &mut S) -> u64 {
        let n = self.channels();
        assert_eq!(data.len() % n, 0, "interleaved data must be whole frames");
        for frame in data.chunks_exact(n) {
            self.step_all(sink, |c| frame[c]);
        }
        (data.len() / n) as u64
    }

    /// Advances all channels over planar (one slice per channel)
    /// clock-rate sample buffers, all of the same length.
    ///
    /// This is the SoA fast path: ticks are segmented at frame
    /// boundaries, and within a segment each channel runs a tight
    /// register-resident loop over its slice — the threshold voltage is
    /// a loop constant there (it can only change at `End_of_frame`), so
    /// the per-tick work is one compare and a few bit operations. Large
    /// banks additionally run channel tiles over bounded time segments
    /// per the [`TilePolicy`].
    ///
    /// # Panics
    ///
    /// Panics when the slice count differs from the channel count or the
    /// slices disagree on length.
    pub fn push_planar<S: BankSink>(&mut self, channels: &[&[f64]], sink: &mut S) -> u64 {
        let n = self.channels();
        assert_eq!(channels.len(), n, "one sample slice per channel");
        let len = channels.first().map_or(0, |c| c.len());
        assert!(
            channels.iter().all(|c| c.len() == len),
            "channel slices must share a length"
        );
        // 8 source bytes per channel per tick, read directly.
        let seg_cap = self.segment_ticks(8.0, len);
        self.drive_tiled(len, seg_cap, sink, |c, off, span| {
            SliceFeed(&channels[c][off..off + span])
        });
        len as u64
    }

    /// Drives the bank over whole per-channel [`Signal`]s of a common
    /// sample rate and length, zero-order-holding them onto the system
    /// clock exactly as
    /// [`DatcStream::push_signal`](crate::stream::DatcStream::push_signal)
    /// does. Returns the number of ticks executed.
    ///
    /// The ZOH index mapping is computed **once per segment** and shared
    /// by every channel; the per-channel sample gather is fused into the
    /// compare kernel (AVX2 `vgatherqpd` where available), so no
    /// intermediate resampled buffer is ever materialised.
    ///
    /// # Panics
    ///
    /// Panics when the signal count differs from the channel count or the
    /// signals disagree on rate/length.
    pub fn push_signals<S: BankSink>(&mut self, signals: &[Signal], sink: &mut S) -> u64 {
        let n = self.channels();
        assert_eq!(signals.len(), n, "one signal per channel");
        let Some(first) = signals.first() else {
            return 0;
        };
        let fs = first.sample_rate();
        let len = first.len();
        assert!(
            signals.iter().all(|s| s.sample_rate() == fs),
            "signals must share a sample rate"
        );
        assert!(
            signals.iter().all(|s| s.len() == len),
            "signals must share a length"
        );
        let zoh = ZohResampler::new(fs, self.config.clock_hz);
        let n_ticks = zoh.ticks_for_len(len);

        // Source bytes per channel per tick ≈ 8 · fs / clock (ZOH walks
        // the source monotonically), plus the shared index lane. The
        // segment index buffer is bounded even without a tile policy so
        // it stays cache-resident.
        let src_per_tick = 8.0 * (fs / self.config.clock_hz).max(1.0);
        let seg_cap = self
            .segment_ticks(src_per_tick, n_ticks as usize)
            .min((self.frame_len as usize).max(2048));
        let mut idx: Vec<i64> = Vec::with_capacity(seg_cap);
        let mut done = 0u64;
        while done < n_ticks {
            let seg = seg_cap.min((n_ticks - done) as usize);
            idx.clear();
            idx.extend((0..seg).map(|i| zoh.index(done + i as u64) as i64));
            debug_assert!(idx.iter().all(|&i| (i as usize) < len));
            self.drive_tiled(seg, seg, sink, |c, off, span| GatherFeed {
                samples: signals[c].samples(),
                idx: &idx[off..off + span],
            });
            done += seg as u64;
        }
        n_ticks
    }

    /// Ticks per segment so one tile's source working set stays within
    /// the tiling byte budget.
    fn segment_ticks(&self, src_bytes_per_tick: f64, total: usize) -> usize {
        if self.tiling.target_tile_bytes == usize::MAX {
            return total.max(1);
        }
        let tile_ch = self.tiling.max_tile_channels.min(self.channels()).max(1);
        let per_tick = src_bytes_per_tick * tile_ch as f64;
        let ticks = (self.tiling.target_tile_bytes as f64 / per_tick) as usize;
        ticks.max(self.frame_len as usize)
    }

    /// The tiled segment driver: for each time segment, each channel
    /// tile replays the segment's frame-bounded spans; shared lock-step
    /// counters commit once per segment. Traversal order is the only
    /// thing the policy changes — results are bit-identical.
    fn drive_tiled<'a, S: BankSink, F: SpanFeed, M: Fn(usize, usize, usize) -> F + 'a>(
        &mut self,
        total: usize,
        seg_cap: usize,
        sink: &mut S,
        make: M,
    ) {
        let n = self.channels();
        let tile_ch = self.tiling.max_tile_channels.min(n).max(1);
        let mut off = 0usize;
        while off < total {
            let seg = seg_cap.min(total - off);
            let (mut end_tick, mut end_tif, mut closed) = (self.tick, self.tick_in_frame, 0u64);
            let mut c0 = 0usize;
            while c0 < n {
                let c1 = (c0 + tile_ch).min(n);
                // Replay the segment's spans for this tile. The span
                // boundaries depend only on the shared frame countdown,
                // so every tile sees the identical split.
                let mut local = 0usize;
                let mut k0 = self.tick;
                let mut tif = self.tick_in_frame;
                closed = 0;
                while local < seg {
                    let remaining = (self.frame_len - tif) as usize;
                    let span = remaining.min(seg - local);
                    let closes_frame = span == remaining;
                    for c in c0..c1 {
                        let feed = make(c, off + local, span);
                        self.run_channel_span(c, k0, &feed, closes_frame, sink);
                    }
                    k0 += span as u64;
                    tif = if closes_frame { 0 } else { tif + span as u32 };
                    closed += u64::from(closes_frame);
                    local += span;
                }
                (end_tick, end_tif) = (k0, tif);
                c0 = c1;
            }
            self.tick = end_tick;
            self.tick_in_frame = end_tif;
            self.frames += closed;
            off += seg;
        }
    }

    /// One channel over one frame-bounded span of clock-rate samples.
    /// All mutable per-tick state lives in locals; the SoA arrays are
    /// read once on entry and written once on exit.
    #[inline]
    fn run_channel_span<S: BankSink, F: SpanFeed>(
        &mut self,
        c: usize,
        k0: u64,
        feed: &F,
        closes_frame: bool,
        sink: &mut S,
    ) {
        let vth = self.vth_volts[c];
        let code = self.set_vth[c];
        let comp = self.comparators.as_ref().and_then(|b| b.channel(c));
        let mut in_reg = self.in_reg[c];
        let mut d_prev = self.d_prev[c];
        let mut cnt = self.counter[c];
        let ones_before = cnt;

        let plain = feed.len() - usize::from(closes_frame);
        let mut k = k0;
        if S::EVERY_TICK {
            for j in 0..plain {
                let d = in_reg;
                in_reg = compare_one(feed.get(j), vth, in_reg, k, comp);
                cnt += u32::from(d);
                let event = d & !d_prev;
                d_prev = d;
                sink.on_tick(
                    c,
                    k,
                    &DtcStep {
                        d_out: d,
                        event,
                        sampled_code: code,
                        set_vth: code,
                        end_of_frame: false,
                    },
                );
                k += 1;
            }
        } else {
            // Bit-parallel quiet path: pack 64 comparator decisions into
            // one word, recover `D_out` (one-tick `In_reg` delay) and the
            // rising edges with shifts, count ones with popcount, and
            // touch the sink only where an event bit is set. No
            // data-dependent branch per tick.
            let caps = self.caps;
            let mut eff = [0.0f64; 64];
            let mut i = 0usize;
            while i < plain {
                let w = (plain - i).min(64);
                let cmp = match comp {
                    None => feed.pack(i, w, vth, caps),
                    Some(cc) => {
                        feed.load(i, &mut eff[..w]);
                        pack_nonideal(&mut eff[..w], vth, in_reg, k, cc, caps)
                    }
                };
                let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                let d = ((cmp << 1) | u64::from(in_reg)) & mask;
                let prev = (d << 1) | u64::from(d_prev);
                cnt += d.count_ones();
                let mut rising = d & !prev;
                while rising != 0 {
                    let j = rising.trailing_zeros();
                    sink.on_event(c, k + u64::from(j), code);
                    rising &= rising - 1;
                }
                in_reg = (cmp >> (w - 1)) & 1 == 1;
                d_prev = (d >> (w - 1)) & 1 == 1;
                i += w;
                k += w as u64;
            }
        }

        if closes_frame {
            let d = in_reg;
            in_reg = compare_one(feed.get(plain), vth, in_reg, k, comp);
            cnt += u32::from(d);
            let event = d & !d_prev;
            d_prev = d;
            let ones_total = cnt;
            let new_code = self.decide_code(cnt, self.n2[c], self.n1[c]);
            // History shift of Listing 1.
            self.n1[c] = self.n2[c];
            self.n2[c] = cnt;
            cnt = 0;
            self.set_vth[c] = new_code;
            self.vth_volts[c] = self.vth_lut[usize::from(new_code)];
            if S::EVERY_TICK {
                sink.on_tick(
                    c,
                    k,
                    &DtcStep {
                        d_out: d,
                        event,
                        sampled_code: code,
                        set_vth: new_code,
                        end_of_frame: true,
                    },
                );
            } else {
                if event {
                    sink.on_event(c, k, code);
                }
                sink.on_frame(c, k, new_code);
                sink.on_span(c, feed.len() as u64, u64::from(ones_total - ones_before));
            }
        } else if !S::EVERY_TICK {
            sink.on_span(c, feed.len() as u64, u64::from(cnt - ones_before));
        }

        self.in_reg[c] = in_reg;
        self.d_prev[c] = d_prev;
        self.counter[c] = cnt;
    }

    /// The frame-boundary threshold decision (Listing 1) for one
    /// channel's history.
    #[inline]
    fn decide_code(&self, n3: u32, n2: u32, n1: u32) -> u8 {
        match self.config.arithmetic {
            Arithmetic::Fixed => predict_code_fixed(
                avr_scaled(n3, n2, n1, self.weights_q),
                &self.table,
                self.max_code,
            ),
            Arithmetic::Float => predict_code_float(
                avr_float(n3, n2, n1, self.config.weights),
                &self.table,
                self.max_code,
            ),
        }
    }

    /// One lock-step tick across every channel. `input(c)` yields
    /// channel `c`'s comparator input voltage.
    #[inline]
    fn step_all<S: BankSink, F: Fn(usize) -> f64>(&mut self, sink: &mut S, input: F) {
        self.tick_in_frame += 1;
        let end_of_frame = self.tick_in_frame == self.frame_len;
        let k = self.tick;
        self.tick += 1;

        for c in 0..self.set_vth.len() {
            let x = input(c);
            // In_reg: the synchronous core sees last cycle's bit; the
            // comparator decision is the model's (ideal: strict
            // threshold on the LUT voltage).
            let d = self.in_reg[c];
            let comp = self.comparators.as_ref().and_then(|b| b.channel(c));
            self.in_reg[c] = compare_one(x, self.vth_volts[c], d, k, comp);
            let sampled_code = self.set_vth[c];
            let cnt = self.counter[c] + u32::from(d);
            self.counter[c] = cnt;

            if end_of_frame {
                let n3 = cnt;
                let code = self.decide_code(n3, self.n2[c], self.n1[c]);
                self.set_vth[c] = code;
                self.vth_volts[c] = self.vth_lut[usize::from(code)];
                // History shift of Listing 1.
                self.n1[c] = self.n2[c];
                self.n2[c] = n3;
                self.counter[c] = 0;
            }

            let event = d && !self.d_prev[c];
            self.d_prev[c] = d;

            sink.on_tick(
                c,
                k,
                &DtcStep {
                    d_out: d,
                    event,
                    sampled_code,
                    set_vth: self.set_vth[c],
                    end_of_frame,
                },
            );
        }

        if end_of_frame {
            self.tick_in_frame = 0;
            self.frames += 1;
        }
    }
}

/// One comparator decision, replicating
/// [`Comparator::compare`] expression for expression
/// (`state` is the last raw decision — which the bank stores in
/// `In_reg`; noise is drawn at lane position `k`, the absolute tick).
#[inline]
fn compare_one(x: f64, vth: f64, state: bool, k: u64, comp: Option<ChannelComp>) -> bool {
    match comp {
        None => x > vth,
        Some(cc) => {
            let noise = if cc.sigma > 0.0 {
                cc.sigma * gaussian_at(cc.seed, k)
            } else {
                0.0
            };
            let eff = x + cc.offset + noise;
            let threshold = if state { vth - cc.half } else { vth + cc.half };
            eff > threshold
        }
    }
}

/// Packs one block of ≤ 64 non-ideal comparator decisions. `block`
/// holds the raw samples on entry (they are rewritten in place into the
/// effective inputs `x + offset + noise`); the block's first tick is
/// absolute tick `k`, and `state` carries the hysteresis state in.
///
/// The two hysteresis thresholds become two packed compares, and the
/// sequential state recurrence `d_j = hi_j | (lo_j & d_{j-1})`
/// collapses into the carry chain of a single 64-bit add (see
/// [`hyst_resolve`]).
#[inline]
fn pack_nonideal(
    block: &mut [f64],
    vth: f64,
    state: bool,
    k: u64,
    cc: ChannelComp,
    caps: SimdCaps,
) -> u64 {
    let w = block.len();
    if cc.sigma > 0.0 {
        for (j, e) in block.iter_mut().enumerate() {
            let noise = cc.sigma * gaussian_at(cc.seed, k + j as u64);
            *e = *e + cc.offset + noise;
        }
    } else {
        for e in block.iter_mut() {
            *e = *e + cc.offset + 0.0;
        }
    }
    // `vth + half` with half = 0 is bit-comparable to `vth - half`, so
    // the hysteresis-free case needs only the one packed compare.
    let hi = pack_block(block, vth + cc.half, caps);
    if cc.half > 0.0 {
        let lo = pack_block(block, vth - cc.half, caps);
        hyst_resolve(hi, lo, state, w)
    } else {
        hi
    }
}

/// Resolves the hysteresis recurrence `d_j = hi_j | (lo_j & d_{j-1})`
/// (with `d_{-1}` = `carry_in`) for a whole word in O(1).
///
/// With `g = hi` (generate) and `p = lo` (propagate) — and `hi ⊆ lo`,
/// which holds because `vth + h/2 ≥ vth − h/2` — the recurrence is
/// exactly the carry chain of the addition `g + p + carry_in`:
/// `c_{j+1} = maj(g_j, p_j, c_j) = g_j | (p_j & c_j)`. One 64-bit add
/// recovers all 64 sequential decisions.
#[inline]
fn hyst_resolve(hi: u64, lo: u64, carry_in: bool, w: usize) -> u64 {
    debug_assert_eq!(hi & !lo, 0, "generate must imply propagate");
    let total = hi as u128 + lo as u128 + u128::from(carry_in);
    let sum = total as u64;
    // bit j of `carries` = carry INTO bit j = d_{j-1}
    let carries = sum ^ hi ^ lo;
    let carry_out = (total >> 64) as u64;
    let d = (carries >> 1) | (carry_out << 63);
    if w == 64 {
        d
    } else {
        d & ((1u64 << w) - 1)
    }
}

/// Packs `vals.len() ≤ 64` strict comparator decisions
/// (`vals[j] > vth`, bit `j` = tick `j`) into one word.
#[inline]
fn pack_block(vals: &[f64], vth: f64, caps: SimdCaps) -> u64 {
    debug_assert!(vals.len() <= 64);
    #[cfg(target_arch = "x86_64")]
    if caps.avx {
        if let Ok(chunk) = <&[f64; 64]>::try_from(vals) {
            // SAFETY: AVX support confirmed at runtime by `SimdCaps`.
            return unsafe { pack64_avx(chunk, vth) };
        }
    }
    let _ = caps;
    let mut cmp = 0u64;
    for (j, &x) in vals.iter().enumerate() {
        cmp |= u64::from(x > vth) << j;
    }
    cmp
}

/// AVX word-pack: 4-wide ordered-quiet greater-than compares folded into
/// a bitmask through `movmskpd`. `_CMP_GT_OQ` matches Rust's `>` exactly
/// (strict, `false` against NaN), so this is bit-identical to the scalar
/// path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn pack64_avx(chunk: &[f64; 64], vth: f64) -> u64 {
    use std::arch::x86_64::{_mm256_cmp_pd, _mm256_loadu_pd, _mm256_movemask_pd, _mm256_set1_pd};
    const GT_OQ: i32 = 0x1e; // _CMP_GT_OQ
    let t = _mm256_set1_pd(vth);
    let mut cmp = 0u64;
    let mut j = 0;
    while j < 64 {
        // SAFETY: `j + 4 <= 64`, so the load stays inside `chunk`.
        let v = _mm256_loadu_pd(chunk.as_ptr().add(j));
        let m = _mm256_cmp_pd::<GT_OQ>(v, t);
        cmp |= (_mm256_movemask_pd(m) as u64) << j;
        j += 4;
    }
    cmp
}

/// AVX2 fused gather + compare: 64 ZOH indices resolved through
/// `vgatherqpd` straight into `cmp_pd` + `movmskpd` bitmask lanes — the
/// samples never round-trip through a scratch buffer. Bit-identical to
/// the scalar gather (`_CMP_GT_OQ` = strict `>`, `false` against NaN).
///
/// # Safety
///
/// Caller must have verified AVX2 support and that every index in
/// `idx[..64]` is in bounds for `samples`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pack64_gather_avx2(samples: *const f64, idx: &[i64], vth: f64) -> u64 {
    use std::arch::x86_64::{
        __m256i, _mm256_cmp_pd, _mm256_i64gather_pd, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_set1_pd,
    };
    const GT_OQ: i32 = 0x1e; // _CMP_GT_OQ
    debug_assert!(idx.len() >= 64);
    let t = _mm256_set1_pd(vth);
    let mut cmp = 0u64;
    let mut j = 0;
    while j < 64 {
        // SAFETY: `j + 4 <= 64 <= idx.len()`; indices validated by the
        // caller against the sample buffer.
        let vi = _mm256_loadu_si256(idx.as_ptr().add(j) as *const __m256i);
        let v = _mm256_i64gather_pd::<8>(samples, vi);
        let m = _mm256_cmp_pd::<GT_OQ>(v, t);
        cmp |= (_mm256_movemask_pd(m) as u64) << j;
        j += 4;
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameSize;

    use crate::stream::DatcStream;

    /// Reference: drive N independent single-channel streams and record
    /// every DtcStep.
    fn reference_steps(config: DatcConfig, per_channel: &[Vec<f64>]) -> Vec<Vec<DtcStep>> {
        struct Rec(Vec<DtcStep>);
        impl TickSink for Rec {
            fn on_tick(&mut self, _tick: u64, step: &DtcStep) {
                self.0.push(*step);
            }
        }
        per_channel
            .iter()
            .map(|samples| {
                let mut s = DatcStream::new(config).unwrap();
                let mut rec = Rec(Vec::new());
                s.push_chunk(samples, &mut rec);
                rec.0
            })
            .collect()
    }

    struct BankRec {
        steps: Vec<Vec<DtcStep>>,
    }
    impl BankSink for BankRec {
        fn on_tick(&mut self, channel: usize, _tick: u64, step: &DtcStep) {
            self.steps[channel].push(*step);
        }
    }

    fn test_inputs(channels: usize, ticks: usize) -> Vec<Vec<f64>> {
        (0..channels)
            .map(|c| {
                (0..ticks)
                    .map(|k| {
                        let t = k as f64 * 0.07 + c as f64;
                        (0.2 + 0.15 * c as f64) * (t.sin() * (t * 0.31).cos()).abs()
                    })
                    .collect()
            })
            .collect()
    }

    /// A mixed bag of non-ideal comparators: offset-only, hysteresis,
    /// noise, everything, and one ideal straggler.
    fn test_comparators(channels: usize) -> Vec<Comparator> {
        (0..channels)
            .map(|c| match c % 5 {
                0 => Comparator::ideal().with_offset(0.013),
                1 => Comparator::ideal().with_hysteresis(0.05),
                2 => Comparator::ideal().with_noise(0.02, 11 + c as u64),
                3 => Comparator::ideal()
                    .with_offset(-0.008)
                    .with_hysteresis(0.03)
                    .with_noise(0.015, 77 + c as u64),
                _ => Comparator::ideal(),
            })
            .collect()
    }

    #[test]
    fn bank_is_bit_exact_with_independent_streams() {
        for (frame, arith) in [
            (FrameSize::F100, Arithmetic::Fixed),
            (FrameSize::F200, Arithmetic::Float),
            (FrameSize::F400, Arithmetic::Fixed),
        ] {
            let config = DatcConfig::paper()
                .with_frame_size(frame)
                .with_arithmetic(arith);
            let inputs = test_inputs(5, 3000);
            let expected = reference_steps(config, &inputs);

            let mut bank = BankStream::new(config, 5).unwrap();
            let mut rec = BankRec {
                steps: vec![Vec::new(); 5],
            };
            // uneven frame-boundary chunking must not matter
            let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
            bank.push_planar(&planar, &mut rec);

            assert_eq!(rec.steps, expected, "frame {frame:?} arith {arith:?}");
        }
    }

    #[test]
    fn nonideal_bank_is_bit_exact_with_independent_streams() {
        let config = DatcConfig::paper();
        let inputs = test_inputs(5, 2700);
        let comps = test_comparators(5);
        // reference: N solo streams carrying the same comparator configs
        struct Rec(Vec<DtcStep>);
        impl TickSink for Rec {
            fn on_tick(&mut self, _tick: u64, step: &DtcStep) {
                self.0.push(*step);
            }
        }
        let expected: Vec<Vec<DtcStep>> = inputs
            .iter()
            .zip(&comps)
            .map(|(samples, comp)| {
                let mut s = DatcStream::new(config)
                    .unwrap()
                    .with_comparator(comp.clone());
                let mut rec = Rec(Vec::new());
                s.push_chunk(samples, &mut rec);
                rec.0
            })
            .collect();

        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        for simd in [SimdPolicy::Auto, SimdPolicy::ForceScalar] {
            // every-tick delivery
            let mut bank = BankStream::new(config, 5)
                .unwrap()
                .with_comparators(&comps)
                .unwrap()
                .with_simd_policy(simd);
            assert!(bank.has_nonideal_comparators());
            let mut rec = BankRec {
                steps: vec![Vec::new(); 5],
            };
            bank.push_planar(&planar, &mut rec);
            assert_eq!(rec.steps, expected, "every-tick, {simd:?}");

            // sparse delivery: same events, codes and duty counters
            let mut bank = BankStream::new(config, 5)
                .unwrap()
                .with_comparators(&comps)
                .unwrap()
                .with_simd_policy(simd);
            let mut sink = BankEventSink::new(config.clock_hz, 5);
            bank.push_planar(&planar, &mut sink);
            for (c, steps) in expected.iter().enumerate() {
                let solo_events: Vec<(u64, u8)> = steps
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.event)
                    .map(|(k, s)| (k as u64, s.sampled_code))
                    .collect();
                let bank_events: Vec<(u64, u8)> = sink
                    .events(c)
                    .iter()
                    .map(|e| (e.tick, e.vth_code.unwrap()))
                    .collect();
                assert_eq!(bank_events, solo_events, "sparse events ch {c}, {simd:?}");
                let solo_ones: u64 = steps.iter().map(|s| u64::from(s.d_out)).sum();
                assert_eq!(sink.ones()[c], solo_ones, "sparse ones ch {c}, {simd:?}");
            }
        }
    }

    #[test]
    fn all_ideal_comparator_slice_keeps_the_ideal_kernel() {
        let bank = BankStream::new(DatcConfig::paper(), 3)
            .unwrap()
            .with_comparators(&vec![Comparator::ideal(); 3])
            .unwrap();
        assert!(!bank.has_nonideal_comparators());
        let err = BankStream::new(DatcConfig::paper(), 3)
            .unwrap()
            .with_comparators(&vec![Comparator::ideal(); 2]);
        assert!(err.is_err(), "length mismatch rejected");
        for bad in [
            Comparator::ideal().with_offset(f64::NAN),
            Comparator::ideal().with_hysteresis(f64::INFINITY),
            Comparator::ideal().with_noise(f64::INFINITY, 1),
        ] {
            let err = BankStream::new(DatcConfig::paper(), 1)
                .unwrap()
                .with_comparators(std::slice::from_ref(&bad));
            assert!(err.is_err(), "non-finite parameter rejected: {bad:?}");
        }
    }

    #[test]
    fn tiling_policies_are_bit_identical() {
        let config = DatcConfig::paper();
        let inputs = test_inputs(40, 2300);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let reference = {
            let mut bank = BankStream::new(config, 40)
                .unwrap()
                .with_tiling(TilePolicy::none());
            let mut sink = BankEventSink::new(config.clock_hz, 40);
            bank.push_planar(&planar, &mut sink);
            (bank.ticks(), bank.frames(), sink.into_parts())
        };
        for tiling in [
            TilePolicy::auto(),
            TilePolicy {
                max_tile_channels: 3,
                target_tile_bytes: 4096,
            },
            TilePolicy {
                max_tile_channels: 64,
                target_tile_bytes: 1 << 20,
            },
        ] {
            let mut bank = BankStream::new(config, 40).unwrap().with_tiling(tiling);
            let mut sink = BankEventSink::new(config.clock_hz, 40);
            bank.push_planar(&planar, &mut sink);
            assert_eq!(
                (bank.ticks(), bank.frames(), sink.into_parts()),
                reference,
                "{tiling:?}"
            );
        }
    }

    #[test]
    fn hyst_resolve_matches_the_sequential_recurrence() {
        let mut lo = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            // xorshift-scramble a propagate word, carve a generate subset
            lo ^= lo << 13;
            lo ^= lo >> 7;
            lo ^= lo << 17;
            let hi = lo & lo.rotate_left(11) & lo.rotate_right(5);
            for carry in [false, true] {
                for w in [1usize, 3, 63, 64] {
                    let fast = hyst_resolve(hi, lo, carry, w);
                    let mut state = carry;
                    let mut slow = 0u64;
                    for j in 0..w {
                        state = (hi >> j) & 1 == 1 || ((lo >> j) & 1 == 1 && state);
                        slow |= u64::from(state) << j;
                    }
                    assert_eq!(fast, slow, "hi {hi:#x} lo {lo:#x} carry {carry} w {w}");
                }
            }
        }
    }

    #[test]
    fn interleaved_and_planar_drives_agree() {
        let config = DatcConfig::paper();
        let inputs = test_inputs(3, 1700);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();

        let mut a = BankStream::new(config, 3).unwrap();
        let mut ra = BankRec {
            steps: vec![Vec::new(); 3],
        };
        a.push_planar(&planar, &mut ra);

        let mut interleaved = Vec::with_capacity(3 * 1700);
        for k in 0..1700 {
            for ch in &inputs {
                interleaved.push(ch[k]);
            }
        }
        let mut b = BankStream::new(config, 3).unwrap();
        let mut rb = BankRec {
            steps: vec![Vec::new(); 3],
        };
        // split at an awkward frame boundary
        let (lo, hi) = interleaved.split_at(3 * 601);
        b.push_interleaved(lo, &mut rb);
        b.push_interleaved(hi, &mut rb);

        assert_eq!(ra.steps, rb.steps);
        assert_eq!(a.ticks(), b.ticks());
        assert_eq!(a.vth_codes(), b.vth_codes());
    }

    #[test]
    fn push_signals_matches_per_channel_push_signal() {
        use crate::encoder::EventSink;
        let config = DatcConfig::paper();
        let signals: Vec<Signal> = (0..4)
            .map(|c| {
                Signal::from_fn(2500.0, 3.0, |t| {
                    ((t * (40.0 + c as f64 * 13.0)).sin() * (t * 3.0).cos()).abs() * 0.5
                })
            })
            .collect();

        for simd in [SimdPolicy::Auto, SimdPolicy::ForceScalar] {
            let mut bank = BankStream::new(config, 4).unwrap().with_simd_policy(simd);
            let mut sink = BankEventSink::new(config.clock_hz, 4);
            let n_ticks = bank.push_signals(&signals, &mut sink);
            assert_eq!(n_ticks, bank.ticks());

            for (c, s) in signals.iter().enumerate() {
                let mut solo = DatcStream::new(config).unwrap();
                let mut es = EventSink::new(config.clock_hz);
                let solo_ticks = solo.push_signal(s, &mut es);
                assert_eq!(solo_ticks, n_ticks);
                assert_eq!(sink.events(c), es.events(), "channel {c} {simd:?}");
            }
        }
    }

    #[test]
    fn fused_gather_and_scalar_gather_agree_with_nonideal_comparators() {
        use crate::encoder::EventSink;
        let config = DatcConfig::paper();
        let comps = test_comparators(6);
        let signals: Vec<Signal> = (0..6)
            .map(|c| {
                Signal::from_fn(2500.0, 2.0, |t| {
                    ((t * (35.0 + c as f64 * 11.0)).sin() * (t * 2.1).cos()).abs() * 0.45
                })
            })
            .collect();

        let mut outputs = Vec::new();
        for simd in [SimdPolicy::Auto, SimdPolicy::ForceScalar] {
            let mut bank = BankStream::new(config, 6)
                .unwrap()
                .with_comparators(&comps)
                .unwrap()
                .with_simd_policy(simd);
            let mut sink = BankEventSink::new(config.clock_hz, 6);
            bank.push_signals(&signals, &mut sink);
            outputs.push(sink.into_parts());
        }
        assert_eq!(outputs[0], outputs[1], "fused vs scalar gather");

        // and both match the solo streams
        for (c, s) in signals.iter().enumerate() {
            let mut solo = DatcStream::new(config)
                .unwrap()
                .with_comparator(comps[c].clone());
            let mut es = EventSink::new(config.clock_hz);
            solo.push_signal(s, &mut es);
            assert_eq!(outputs[0].0[c], es.events(), "channel {c}");
        }
    }

    #[test]
    fn counting_sink_counts_every_channel() {
        let config = DatcConfig::paper();
        let inputs = test_inputs(2, 1000);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let mut bank = BankStream::new(config, 2).unwrap();
        let mut sink = BankCountingSink::new(2);
        bank.push_planar(&planar, &mut sink);
        for c in 0..2 {
            assert_eq!(sink.channel(c).ticks, 1000);
            assert_eq!(sink.channel(c).frames, 10);
        }
        assert_eq!(bank.frames(), 10);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let config = DatcConfig::paper();
        let mut bank = BankStream::new(config, 3).unwrap();
        let mut sink = BankCountingSink::new(3);
        let inputs = test_inputs(3, 900);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        bank.push_planar(&planar, &mut sink);
        assert!(bank.ticks() == 900);
        bank.reset();
        assert_eq!(bank.ticks(), 0);
        assert_eq!(bank.frames(), 0);
        assert!(bank.vth_codes().iter().all(|&c| c == config.initial_code));
    }

    #[test]
    fn reset_replays_noisy_banks_identically() {
        let config = DatcConfig::paper();
        let comps = test_comparators(4);
        let inputs = test_inputs(4, 1100);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let mut bank = BankStream::new(config, 4)
            .unwrap()
            .with_comparators(&comps)
            .unwrap();
        let mut first = BankEventSink::new(config.clock_hz, 4);
        bank.push_planar(&planar, &mut first);
        bank.reset();
        let mut again = BankEventSink::new(config.clock_hz, 4);
        bank.push_planar(&planar, &mut again);
        assert_eq!(first.into_parts(), again.into_parts());
    }

    #[test]
    fn zero_channels_rejected() {
        assert!(BankStream::new(DatcConfig::paper(), 0).is_err());
    }

    #[test]
    fn simd_and_scalar_word_packing_agree() {
        let mut chunk = [0.0f64; 64];
        for (j, x) in chunk.iter_mut().enumerate() {
            *x = ((j as f64 * 0.37).sin() * 0.6).abs();
        }
        // exercise equality, boundaries and extremes
        chunk[7] = 0.5;
        chunk[8] = f64::INFINITY;
        chunk[9] = 0.0;
        chunk[10] = f64::NAN;
        let scalar_caps = SimdCaps {
            avx: false,
            avx2: false,
        };
        let auto_caps = SimdCaps::detect(SimdPolicy::Auto);
        for vth in [0.0, 0.062_5, 0.5, 0.937_5] {
            for w in [64usize, 63, 17, 1] {
                let scalar = pack_block(&chunk[..w], vth, scalar_caps);
                let dispatched = pack_block(&chunk[..w], vth, auto_caps);
                assert_eq!(scalar, dispatched, "vth {vth} w {w}");
            }
        }
        // fused gather against scalar gather on a strided index pattern
        let samples: Vec<f64> = (0..512).map(|i| ((i as f64) * 0.11).sin().abs()).collect();
        let idx: Vec<i64> = (0..64).map(|j| (j * 7 + 3) % 512).collect();
        let feed = GatherFeed {
            samples: &samples,
            idx: &idx,
        };
        for vth in [0.1, 0.5, 0.9] {
            assert_eq!(
                feed.pack(0, 64, vth, scalar_caps),
                feed.pack(0, 64, vth, auto_caps),
                "gather vth {vth}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one sample per channel")]
    fn frame_length_mismatch_panics() {
        let mut bank = BankStream::new(DatcConfig::paper(), 3).unwrap();
        let mut sink = BankCountingSink::new(3);
        bank.push_frame(&[0.0, 0.0], &mut sink);
    }
}
