//! The struct-of-arrays multi-channel D-ATC kernel.
//!
//! [`BankStream`] advances N channels through the comparator → DTC →
//! DAC cycle **per input frame** in one cache-friendly pass: all
//! per-channel state lives in parallel arrays (threshold voltages,
//! frame counters, comparator bits), the frame countdown and interval
//! ROM are shared scalars, and the code→voltage conversion is a LUT
//! index. The per-channel inner step is branch-free outside the rare
//! end-of-frame and event cases, which is what lets a single core chew
//! through tens of millions of channel·ticks per second — see
//! `BENCH_fleet.json` at the workspace root for measured numbers.
//!
//! Results are **bit-exact** with N independent
//! [`DatcStream`](crate::stream::DatcStream)s (ideal comparator) fed the
//! same per-channel samples — property-tested in `tests/` at the
//! workspace root. The multi-threaded sharding driver over this kernel
//! is `FleetRunner` in the `datc-engine` crate.
//!
//! # Example
//!
//! ```
//! use datc_core::bank::{BankCountingSink, BankStream};
//! use datc_core::config::DatcConfig;
//!
//! let mut bank = BankStream::new(DatcConfig::paper(), 4)?;
//! let mut sink = BankCountingSink::new(4);
//! for k in 0..2000u32 {
//!     let t = f64::from(k) * 0.2;
//!     // four phase-shifted channels, one frame per tick
//!     let frame = [
//!         0.4 * t.sin().abs(),
//!         0.4 * (t + 0.5).sin().abs(),
//!         0.4 * (t + 1.0).sin().abs(),
//!         0.4 * (t + 1.5).sin().abs(),
//!     ];
//!     bank.push_frame(&frame, &mut sink);
//! }
//! assert!(sink.channel(0).events > 0);
//! # Ok::<(), datc_core::CoreError>(())
//! ```

use crate::config::{Arithmetic, DatcConfig};
use crate::dac::Dac;
use crate::dtc::fixed_point::{
    avr_float, avr_scaled, predict_code_fixed, predict_code_float, quantize_weights,
};
use crate::dtc::intervals::IntervalTable;
use crate::dtc::DtcStep;
use crate::encoder::{CountingSink, TickSink};
use crate::error::CoreError;
use crate::event::Event;
use datc_signal::resample::ZohResampler;
use datc_signal::Signal;

/// Consumer of per-channel, per-tick results from a [`BankStream`].
///
/// The multi-channel analogue of [`TickSink`]:
/// called once per channel per system-clock tick. Within one channel,
/// calls arrive in tick order; the interleaving **across** channels is
/// unspecified — the planar drivers run each channel over a whole
/// frame-bounded span (registers-resident inner loop) before moving to
/// the next channel. Implementations should be `#[inline]`-friendly —
/// the kernel loop is monomorphised over the sink.
pub trait BankSink {
    /// `true` (the default) delivers every tick through
    /// [`on_tick`](BankSink::on_tick). Sinks that only consume events,
    /// frame decisions and aggregate counters set this to `false`, which
    /// lets the planar drivers run an **event-sparse** inner loop: quiet
    /// ticks cost a register add, and the sink hears only
    /// [`on_event`](BankSink::on_event), [`on_frame`](BankSink::on_frame)
    /// and per-span [`on_span`](BankSink::on_span) aggregates.
    ///
    /// A sink must account identically through either delivery mode —
    /// the tick-major drivers (`push_frame`, `push_interleaved`) always
    /// use `on_tick`.
    const EVERY_TICK: bool = true;

    /// Called for `channel` at tick `tick` with the channel's DTC step.
    fn on_tick(&mut self, channel: usize, tick: u64, step: &DtcStep);

    /// Sparse mode: a rising edge fired on `channel` at `tick` while
    /// threshold `code` was in force.
    #[inline]
    fn on_event(&mut self, _channel: usize, _tick: u64, _code: u8) {}

    /// Sparse mode: `channel` closed a frame at `tick`, deciding
    /// `set_vth`.
    #[inline]
    fn on_frame(&mut self, _channel: usize, _tick: u64, _set_vth: u8) {}

    /// Sparse mode: `channel` advanced `ticks` ticks of which `ones` had
    /// the comparator bit high (events/frames already reported
    /// separately).
    #[inline]
    fn on_span(&mut self, _channel: usize, _ticks: u64, _ones: u64) {}
}

/// Per-channel scalar counters — one [`CountingSink`] per channel, the
/// counters-only [`BankSink`] (duty cycle per channel comes free via
/// [`CountingSink::duty_cycle`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankCountingSink {
    channels: Vec<CountingSink>,
}

impl BankCountingSink {
    /// Creates counters for `n` channels.
    pub fn new(n: usize) -> Self {
        BankCountingSink {
            channels: vec![CountingSink::default(); n],
        }
    }

    /// The counters of `channel`.
    pub fn channel(&self, channel: usize) -> &CountingSink {
        &self.channels[channel]
    }

    /// All per-channel counters.
    pub fn channels(&self) -> &[CountingSink] {
        &self.channels
    }

    /// Events summed over every channel.
    pub fn total_events(&self) -> u64 {
        self.channels.iter().map(|c| c.events).sum()
    }
}

impl BankSink for BankCountingSink {
    #[inline]
    fn on_tick(&mut self, channel: usize, tick: u64, step: &DtcStep) {
        self.channels[channel].on_tick(tick, step);
    }
}

/// A [`BankSink`] recording per-channel event lists plus the duty-cycle
/// counters — everything `FleetRunner` needs to assemble per-channel
/// `DatcOutput`s.
#[derive(Debug, Clone)]
pub struct BankEventSink {
    tick_period_s: f64,
    events: Vec<Vec<Event>>,
    ones: Vec<u64>,
    ticks: u64,
}

impl BankEventSink {
    /// Creates a sink for `n` channels of a kernel clocked at `clock_hz`.
    pub fn new(clock_hz: f64, n: usize) -> Self {
        BankEventSink {
            tick_period_s: 1.0 / clock_hz,
            events: vec![Vec::new(); n],
            ones: vec![0; n],
            ticks: 0,
        }
    }

    /// Pre-reserves capacity for `per_channel` events on every channel,
    /// sparing the hot loop the growth-reallocation copies of long
    /// recordings.
    pub fn reserve_events(&mut self, per_channel: usize) {
        for evs in &mut self.events {
            evs.reserve(per_channel);
        }
    }

    /// Events recorded so far for `channel`.
    pub fn events(&self, channel: usize) -> &[Event] {
        &self.events[channel]
    }

    /// Ticks with the comparator high, per channel.
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// Ticks observed per channel.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Consumes the sink into `(per-channel events, per-channel ones,
    /// ticks)` for callers assembling richer outputs.
    pub fn into_parts(self) -> (Vec<Vec<Event>>, Vec<u64>, u64) {
        (self.events, self.ones, self.ticks)
    }
}

impl BankSink for BankEventSink {
    // Events and counters only — unlock the event-sparse planar loop.
    const EVERY_TICK: bool = false;

    #[inline]
    fn on_tick(&mut self, channel: usize, tick: u64, step: &DtcStep) {
        self.ticks += u64::from(channel == 0);
        self.ones[channel] += u64::from(step.d_out);
        if step.event {
            self.on_event(channel, tick, step.sampled_code);
        }
    }

    #[inline]
    fn on_event(&mut self, channel: usize, tick: u64, code: u8) {
        self.events[channel].push(Event {
            tick,
            time_s: tick as f64 * self.tick_period_s,
            vth_code: Some(code),
        });
    }

    #[inline]
    fn on_span(&mut self, channel: usize, ticks: u64, ones: u64) {
        self.ticks += if channel == 0 { ticks } else { 0 };
        self.ones[channel] += ones;
    }
}

/// N-channel streaming D-ATC encoder with struct-of-arrays state.
///
/// All channels share one configuration (clock, frame size, DAC, weights
/// — the realistic multi-electrode case) and advance in lock-step, so
/// the frame countdown, tick counter, interval ROM and voltage LUT are
/// shared scalars; only the genuinely per-channel state (comparator
/// bits, frame counts, history, threshold codes and voltages) is
/// replicated, each kind in its own parallel array.
///
/// Channels use the **ideal** comparator (the paper's operating point);
/// per-channel offset/hysteresis/noise studies go through N independent
/// [`DatcStream`](crate::stream::DatcStream)s instead.
#[derive(Debug, Clone)]
pub struct BankStream {
    config: DatcConfig,
    table: IntervalTable,
    weights_q: (u64, u64, u64),
    vth_lut: Vec<f64>,
    frame_len: u32,
    max_code: u8,
    // --- struct-of-arrays per-channel state ---
    /// Metastability register (`In_reg`) per channel.
    in_reg: Vec<bool>,
    /// Previous `D_out` per channel, for rising-edge detection.
    d_prev: Vec<bool>,
    /// Ones counted in the current frame, per channel.
    counter: Vec<u32>,
    /// Previous-frame count (`N_one2`) per channel.
    n2: Vec<u32>,
    /// Frame-before-that count (`N_one1`) per channel.
    n1: Vec<u32>,
    /// Current threshold code per channel.
    set_vth: Vec<u8>,
    /// Current threshold voltage per channel (code through the LUT,
    /// refreshed only at frame boundaries).
    vth_volts: Vec<f64>,
    // --- shared lock-step scalars ---
    tick_in_frame: u32,
    tick: u64,
    frames: u64,
}

impl BankStream {
    /// Creates an `n`-channel bank kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// validation or `channels` is zero.
    pub fn new(config: DatcConfig, channels: usize) -> Result<Self, CoreError> {
        config.validate()?;
        if channels == 0 {
            return Err(CoreError::InvalidConfig {
                field: "channels",
                reason: "bank needs at least one channel".into(),
            });
        }
        let dac = Dac::new(config.dac_bits, config.vref)?;
        let vth_lut = dac.voltage_table();
        let initial_volts = vth_lut[usize::from(config.initial_code)];
        Ok(BankStream {
            table: IntervalTable::new(
                config.frame_size.len(),
                config.interval_step,
                1usize << config.dac_bits,
            ),
            weights_q: quantize_weights(config.weights),
            vth_lut,
            frame_len: config.frame_size.len(),
            max_code: config.max_code(),
            in_reg: vec![false; channels],
            d_prev: vec![false; channels],
            counter: vec![0; channels],
            n2: vec![0; channels],
            n1: vec![0; channels],
            set_vth: vec![config.initial_code; channels],
            vth_volts: vec![initial_volts; channels],
            tick_in_frame: 0,
            tick: 0,
            frames: 0,
            config,
        })
    }

    /// The shared configuration.
    pub fn config(&self) -> &DatcConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.set_vth.len()
    }

    /// Ticks executed (per channel — channels advance in lock-step).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Frames completed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Current threshold codes, one per channel.
    pub fn vth_codes(&self) -> &[u8] {
        &self.set_vth
    }

    /// Resets every channel to power-on state.
    pub fn reset(&mut self) {
        let initial_volts = self.vth_lut[usize::from(self.config.initial_code)];
        self.in_reg.fill(false);
        self.d_prev.fill(false);
        self.counter.fill(0);
        self.n2.fill(0);
        self.n1.fill(0);
        self.set_vth.fill(self.config.initial_code);
        self.vth_volts.fill(initial_volts);
        self.tick_in_frame = 0;
        self.tick = 0;
        self.frames = 0;
    }

    /// Advances every channel by one system-clock tick; `frame[c]` is the
    /// instantaneous rectified input voltage of channel `c`.
    ///
    /// # Panics
    ///
    /// Panics when `frame.len()` differs from the channel count.
    #[inline]
    pub fn push_frame<S: BankSink>(&mut self, frame: &[f64], sink: &mut S) {
        assert_eq!(frame.len(), self.channels(), "one sample per channel");
        self.step_all(sink, |c| frame[c]);
    }

    /// Advances all channels over `data`, interpreted as consecutive
    /// channel-major frames (`data[k·N + c]` is tick `k`, channel `c`).
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not a multiple of the channel count.
    pub fn push_interleaved<S: BankSink>(&mut self, data: &[f64], sink: &mut S) -> u64 {
        let n = self.channels();
        assert_eq!(data.len() % n, 0, "interleaved data must be whole frames");
        for frame in data.chunks_exact(n) {
            self.step_all(sink, |c| frame[c]);
        }
        (data.len() / n) as u64
    }

    /// Advances all channels over planar (one slice per channel)
    /// clock-rate sample buffers, all of the same length.
    ///
    /// This is the SoA fast path: ticks are segmented at frame
    /// boundaries, and within a segment each channel runs a tight
    /// register-resident loop over its slice — the threshold voltage is
    /// a loop constant there (it can only change at `End_of_frame`), so
    /// the per-tick work is one compare and a few bit operations.
    ///
    /// # Panics
    ///
    /// Panics when the slice count differs from the channel count or the
    /// slices disagree on length.
    pub fn push_planar<S: BankSink>(&mut self, channels: &[&[f64]], sink: &mut S) -> u64 {
        let n = self.channels();
        assert_eq!(channels.len(), n, "one sample slice per channel");
        let len = channels.first().map_or(0, |c| c.len());
        assert!(
            channels.iter().all(|c| c.len() == len),
            "channel slices must share a length"
        );
        let mut k = 0usize;
        while k < len {
            let remaining = (self.frame_len - self.tick_in_frame) as usize;
            let span = remaining.min(len - k);
            let closes_frame = span == remaining;
            let k0 = self.tick;
            for (c, chan) in channels.iter().enumerate() {
                self.run_channel_span(c, k0, &chan[k..k + span], closes_frame, sink);
            }
            self.advance_span(span, closes_frame);
            k += span;
        }
        len as u64
    }

    /// One channel over one frame-bounded span of clock-rate samples.
    /// All mutable per-tick state lives in locals; the SoA arrays are
    /// read once on entry and written once on exit.
    #[inline]
    fn run_channel_span<S: BankSink>(
        &mut self,
        c: usize,
        k0: u64,
        xs: &[f64],
        closes_frame: bool,
        sink: &mut S,
    ) {
        let vth = self.vth_volts[c];
        let code = self.set_vth[c];
        let mut in_reg = self.in_reg[c];
        let mut d_prev = self.d_prev[c];
        let mut cnt = self.counter[c];
        let ones_before = cnt;

        let plain = xs.len() - usize::from(closes_frame);
        let mut k = k0;
        if S::EVERY_TICK {
            for &x in &xs[..plain] {
                let d = in_reg;
                in_reg = x > vth;
                cnt += u32::from(d);
                let event = d & !d_prev;
                d_prev = d;
                sink.on_tick(
                    c,
                    k,
                    &DtcStep {
                        d_out: d,
                        event,
                        sampled_code: code,
                        set_vth: code,
                        end_of_frame: false,
                    },
                );
                k += 1;
            }
        } else {
            // Bit-parallel quiet path: pack 64 comparator decisions into
            // one word, recover `D_out` (one-tick `In_reg` delay) and the
            // rising edges with shifts, count ones with popcount, and
            // touch the sink only where an event bit is set. No
            // data-dependent branch per tick.
            let simd = simd_compare_available();
            let mut i = 0usize;
            while i < plain {
                let w = (plain - i).min(64);
                let cmp = if w == 64 {
                    let chunk: &[f64; 64] = xs[i..i + 64].try_into().expect("full word");
                    pack64(chunk, vth, simd)
                } else {
                    let mut cmp = 0u64;
                    for (j, &x) in xs[i..i + w].iter().enumerate() {
                        cmp |= u64::from(x > vth) << j;
                    }
                    cmp
                };
                let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                let d = ((cmp << 1) | u64::from(in_reg)) & mask;
                let prev = (d << 1) | u64::from(d_prev);
                cnt += d.count_ones();
                let mut rising = d & !prev;
                while rising != 0 {
                    let j = rising.trailing_zeros();
                    sink.on_event(c, k + u64::from(j), code);
                    rising &= rising - 1;
                }
                in_reg = (cmp >> (w - 1)) & 1 == 1;
                d_prev = (d >> (w - 1)) & 1 == 1;
                i += w;
                k += w as u64;
            }
        }

        if closes_frame {
            let d = in_reg;
            in_reg = xs[plain] > vth;
            cnt += u32::from(d);
            let event = d & !d_prev;
            d_prev = d;
            let ones_total = cnt;
            let new_code = self.decide_code(cnt, self.n2[c], self.n1[c]);
            // History shift of Listing 1.
            self.n1[c] = self.n2[c];
            self.n2[c] = cnt;
            cnt = 0;
            self.set_vth[c] = new_code;
            self.vth_volts[c] = self.vth_lut[usize::from(new_code)];
            if S::EVERY_TICK {
                sink.on_tick(
                    c,
                    k,
                    &DtcStep {
                        d_out: d,
                        event,
                        sampled_code: code,
                        set_vth: new_code,
                        end_of_frame: true,
                    },
                );
            } else {
                if event {
                    sink.on_event(c, k, code);
                }
                sink.on_frame(c, k, new_code);
                sink.on_span(c, xs.len() as u64, u64::from(ones_total - ones_before));
            }
        } else if !S::EVERY_TICK {
            sink.on_span(c, xs.len() as u64, u64::from(cnt - ones_before));
        }

        self.in_reg[c] = in_reg;
        self.d_prev[c] = d_prev;
        self.counter[c] = cnt;
    }

    /// The frame-boundary threshold decision (Listing 1) for one
    /// channel's history.
    #[inline]
    fn decide_code(&self, n3: u32, n2: u32, n1: u32) -> u8 {
        match self.config.arithmetic {
            Arithmetic::Fixed => predict_code_fixed(
                avr_scaled(n3, n2, n1, self.weights_q),
                &self.table,
                self.max_code,
            ),
            Arithmetic::Float => predict_code_float(
                avr_float(n3, n2, n1, self.config.weights),
                &self.table,
                self.max_code,
            ),
        }
    }

    /// Drives the bank over whole per-channel [`Signal`]s of a common
    /// sample rate and length, zero-order-holding them onto the system
    /// clock exactly as
    /// [`DatcStream::push_signal`](crate::stream::DatcStream::push_signal)
    /// does. Returns the number of ticks executed.
    ///
    /// The ZOH index mapping is computed **once per tick block** and
    /// shared by every channel, and input gathering runs over a bounded
    /// scratch block so arbitrarily long recordings stream in cache.
    ///
    /// # Panics
    ///
    /// Panics when the signal count differs from the channel count or the
    /// signals disagree on rate/length.
    pub fn push_signals<S: BankSink>(&mut self, signals: &[Signal], sink: &mut S) -> u64 {
        let n = self.channels();
        assert_eq!(signals.len(), n, "one signal per channel");
        let Some(first) = signals.first() else {
            return 0;
        };
        let fs = first.sample_rate();
        let len = first.len();
        assert!(
            signals.iter().all(|s| s.sample_rate() == fs),
            "signals must share a sample rate"
        );
        assert!(
            signals.iter().all(|s| s.len() == len),
            "signals must share a length"
        );
        let zoh = ZohResampler::new(fs, self.config.clock_hz);
        let n_ticks = zoh.ticks_for_len(len);

        // Span-local gather: the shared ZOH indices for one
        // frame-bounded span (≤ 800 ticks) are resolved once, every
        // channel gathers through them into one L1-resident scratch
        // buffer, and the span kernel runs on that. `ticks_for_len`
        // guarantees the indices stay inside the source, so the gather
        // carries no clamp.
        let span_cap = self.frame_len as usize;
        let mut idx: Vec<usize> = Vec::with_capacity(span_cap);
        let mut scratch: Vec<f64> = vec![0.0; span_cap];
        let mut k = 0u64;
        while k < n_ticks {
            let remaining = (self.frame_len - self.tick_in_frame) as usize;
            let span = remaining.min((n_ticks - k) as usize);
            let closes_frame = span == remaining;
            idx.clear();
            idx.extend((0..span).map(|i| zoh.index(k + i as u64)));
            let k0 = self.tick;
            for (c, s) in signals.iter().enumerate() {
                let samples = s.samples();
                for (d, &i) in scratch[..span].iter_mut().zip(&idx) {
                    *d = samples[i];
                }
                self.run_channel_span(c, k0, &scratch[..span], closes_frame, sink);
            }
            self.advance_span(span, closes_frame);
            k += span as u64;
        }
        n_ticks
    }

    /// Books a processed span into the shared lock-step counters.
    #[inline]
    fn advance_span(&mut self, span: usize, closes_frame: bool) {
        self.tick += span as u64;
        self.tick_in_frame += span as u32;
        if closes_frame {
            self.tick_in_frame = 0;
            self.frames += 1;
        }
    }

    /// One lock-step tick across every channel. `input(c)` yields
    /// channel `c`'s comparator input voltage.
    #[inline]
    fn step_all<S: BankSink, F: Fn(usize) -> f64>(&mut self, sink: &mut S, input: F) {
        self.tick_in_frame += 1;
        let end_of_frame = self.tick_in_frame == self.frame_len;
        let k = self.tick;
        self.tick += 1;

        for c in 0..self.set_vth.len() {
            let x = input(c);
            // In_reg: the synchronous core sees last cycle's bit; the
            // ideal comparator is a strict threshold on the LUT voltage.
            let d = self.in_reg[c];
            self.in_reg[c] = x > self.vth_volts[c];
            let sampled_code = self.set_vth[c];
            let cnt = self.counter[c] + u32::from(d);
            self.counter[c] = cnt;

            if end_of_frame {
                let n3 = cnt;
                let code = self.decide_code(n3, self.n2[c], self.n1[c]);
                self.set_vth[c] = code;
                self.vth_volts[c] = self.vth_lut[usize::from(code)];
                // History shift of Listing 1.
                self.n1[c] = self.n2[c];
                self.n2[c] = n3;
                self.counter[c] = 0;
            }

            let event = d && !self.d_prev[c];
            self.d_prev[c] = d;

            sink.on_tick(
                c,
                k,
                &DtcStep {
                    d_out: d,
                    event,
                    sampled_code,
                    set_vth: self.set_vth[c],
                    end_of_frame,
                },
            );
        }

        if end_of_frame {
            self.tick_in_frame = 0;
            self.frames += 1;
        }
    }
}

/// Whether the word-packing compare has a SIMD implementation on this
/// machine (checked at runtime so baseline builds still use it).
#[inline]
fn simd_compare_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Packs 64 strict comparator decisions (`x > vth`, bit `j` = tick `j`)
/// into one word.
#[inline]
fn pack64(chunk: &[f64; 64], vth: f64, simd: bool) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true when `simd_compare_available`
        // confirmed AVX support at runtime.
        return unsafe { pack64_avx(chunk, vth) };
    }
    let _ = simd;
    let mut cmp = 0u64;
    let mut j = 0;
    while j < 64 {
        cmp |= u64::from(chunk[j] > vth) << j;
        j += 1;
    }
    cmp
}

/// AVX word-pack: 4-wide ordered-quiet greater-than compares folded into
/// a bitmask through `movmskpd`. `_CMP_GT_OQ` matches Rust's `>` exactly
/// (strict, `false` against NaN), so this is bit-identical to the scalar
/// path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn pack64_avx(chunk: &[f64; 64], vth: f64) -> u64 {
    use std::arch::x86_64::{_mm256_cmp_pd, _mm256_loadu_pd, _mm256_movemask_pd, _mm256_set1_pd};
    const GT_OQ: i32 = 0x1e; // _CMP_GT_OQ
    let t = _mm256_set1_pd(vth);
    let mut cmp = 0u64;
    let mut j = 0;
    while j < 64 {
        // SAFETY: `j + 4 <= 64`, so the load stays inside `chunk`.
        let v = _mm256_loadu_pd(chunk.as_ptr().add(j));
        let m = _mm256_cmp_pd::<GT_OQ>(v, t);
        cmp |= (_mm256_movemask_pd(m) as u64) << j;
        j += 4;
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameSize;

    use crate::stream::DatcStream;

    /// Reference: drive N independent single-channel streams and record
    /// every DtcStep.
    fn reference_steps(config: DatcConfig, per_channel: &[Vec<f64>]) -> Vec<Vec<DtcStep>> {
        struct Rec(Vec<DtcStep>);
        impl TickSink for Rec {
            fn on_tick(&mut self, _tick: u64, step: &DtcStep) {
                self.0.push(*step);
            }
        }
        per_channel
            .iter()
            .map(|samples| {
                let mut s = DatcStream::new(config).unwrap();
                let mut rec = Rec(Vec::new());
                s.push_chunk(samples, &mut rec);
                rec.0
            })
            .collect()
    }

    struct BankRec {
        steps: Vec<Vec<DtcStep>>,
    }
    impl BankSink for BankRec {
        fn on_tick(&mut self, channel: usize, _tick: u64, step: &DtcStep) {
            self.steps[channel].push(*step);
        }
    }

    fn test_inputs(channels: usize, ticks: usize) -> Vec<Vec<f64>> {
        (0..channels)
            .map(|c| {
                (0..ticks)
                    .map(|k| {
                        let t = k as f64 * 0.07 + c as f64;
                        (0.2 + 0.15 * c as f64) * (t.sin() * (t * 0.31).cos()).abs()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn bank_is_bit_exact_with_independent_streams() {
        for (frame, arith) in [
            (FrameSize::F100, Arithmetic::Fixed),
            (FrameSize::F200, Arithmetic::Float),
            (FrameSize::F400, Arithmetic::Fixed),
        ] {
            let config = DatcConfig::paper()
                .with_frame_size(frame)
                .with_arithmetic(arith);
            let inputs = test_inputs(5, 3000);
            let expected = reference_steps(config, &inputs);

            let mut bank = BankStream::new(config, 5).unwrap();
            let mut rec = BankRec {
                steps: vec![Vec::new(); 5],
            };
            // uneven frame-boundary chunking must not matter
            let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
            bank.push_planar(&planar, &mut rec);

            assert_eq!(rec.steps, expected, "frame {frame:?} arith {arith:?}");
        }
    }

    #[test]
    fn interleaved_and_planar_drives_agree() {
        let config = DatcConfig::paper();
        let inputs = test_inputs(3, 1700);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();

        let mut a = BankStream::new(config, 3).unwrap();
        let mut ra = BankRec {
            steps: vec![Vec::new(); 3],
        };
        a.push_planar(&planar, &mut ra);

        let mut interleaved = Vec::with_capacity(3 * 1700);
        for k in 0..1700 {
            for ch in &inputs {
                interleaved.push(ch[k]);
            }
        }
        let mut b = BankStream::new(config, 3).unwrap();
        let mut rb = BankRec {
            steps: vec![Vec::new(); 3],
        };
        // split at an awkward frame boundary
        let (lo, hi) = interleaved.split_at(3 * 601);
        b.push_interleaved(lo, &mut rb);
        b.push_interleaved(hi, &mut rb);

        assert_eq!(ra.steps, rb.steps);
        assert_eq!(a.ticks(), b.ticks());
        assert_eq!(a.vth_codes(), b.vth_codes());
    }

    #[test]
    fn push_signals_matches_per_channel_push_signal() {
        use crate::encoder::EventSink;
        let config = DatcConfig::paper();
        let signals: Vec<Signal> = (0..4)
            .map(|c| {
                Signal::from_fn(2500.0, 3.0, |t| {
                    ((t * (40.0 + c as f64 * 13.0)).sin() * (t * 3.0).cos()).abs() * 0.5
                })
            })
            .collect();

        let mut bank = BankStream::new(config, 4).unwrap();
        let mut sink = BankEventSink::new(config.clock_hz, 4);
        let n_ticks = bank.push_signals(&signals, &mut sink);
        assert_eq!(n_ticks, bank.ticks());

        for (c, s) in signals.iter().enumerate() {
            let mut solo = DatcStream::new(config).unwrap();
            let mut es = EventSink::new(config.clock_hz);
            let solo_ticks = solo.push_signal(s, &mut es);
            assert_eq!(solo_ticks, n_ticks);
            assert_eq!(sink.events(c), es.events(), "channel {c}");
        }
    }

    #[test]
    fn counting_sink_counts_every_channel() {
        let config = DatcConfig::paper();
        let inputs = test_inputs(2, 1000);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let mut bank = BankStream::new(config, 2).unwrap();
        let mut sink = BankCountingSink::new(2);
        bank.push_planar(&planar, &mut sink);
        for c in 0..2 {
            assert_eq!(sink.channel(c).ticks, 1000);
            assert_eq!(sink.channel(c).frames, 10);
        }
        assert_eq!(bank.frames(), 10);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let config = DatcConfig::paper();
        let mut bank = BankStream::new(config, 3).unwrap();
        let mut sink = BankCountingSink::new(3);
        let inputs = test_inputs(3, 900);
        let planar: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        bank.push_planar(&planar, &mut sink);
        assert!(bank.ticks() == 900);
        bank.reset();
        assert_eq!(bank.ticks(), 0);
        assert_eq!(bank.frames(), 0);
        assert!(bank.vth_codes().iter().all(|&c| c == config.initial_code));
    }

    #[test]
    fn zero_channels_rejected() {
        assert!(BankStream::new(DatcConfig::paper(), 0).is_err());
    }

    #[test]
    fn simd_and_scalar_word_packing_agree() {
        let mut chunk = [0.0f64; 64];
        for (j, x) in chunk.iter_mut().enumerate() {
            *x = ((j as f64 * 0.37).sin() * 0.6).abs();
        }
        // exercise equality, boundaries and extremes
        chunk[7] = 0.5;
        chunk[8] = f64::INFINITY;
        chunk[9] = 0.0;
        for vth in [0.0, 0.062_5, 0.5, 0.937_5] {
            let scalar = pack64(&chunk, vth, false);
            let dispatched = pack64(&chunk, vth, simd_compare_available());
            assert_eq!(scalar, dispatched, "vth {vth}");
        }
    }

    #[test]
    #[should_panic(expected = "one sample per channel")]
    fn frame_length_mismatch_panics() {
        let mut bank = BankStream::new(DatcConfig::paper(), 3).unwrap();
        let mut sink = BankCountingSink::new(3);
        bank.push_frame(&[0.0, 0.0], &mut sink);
    }
}
