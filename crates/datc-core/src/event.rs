//! Threshold-crossing events and event streams.

use serde::{Deserialize, Serialize};

/// A single positive threshold-crossing event, as issued to the IR-UWB
/// modulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Clock tick (for clocked D-ATC) or sample index (for asynchronous
    /// ATC) at which the crossing was detected.
    pub tick: u64,
    /// Event time in seconds.
    pub time_s: f64,
    /// The 4-bit threshold code in force when the event fired (`None` for
    /// plain ATC, which transmits a bare pulse).
    pub vth_code: Option<u8>,
}

impl Event {
    /// Builds an event at clock tick `tick` with the canonical timestamp
    /// `tick * tick_period_s` — the exact expression the streaming kernel
    /// uses, so events rebuilt from a tick-domain wire format are
    /// bit-identical to the encoder's originals.
    ///
    /// # Example
    ///
    /// ```
    /// use datc_core::event::Event;
    /// let e = Event::at_tick(250, 1.0 / 2000.0, Some(3));
    /// assert_eq!(e.time_s, 250.0 * (1.0 / 2000.0));
    /// ```
    pub fn at_tick(tick: u64, tick_period_s: f64, vth_code: Option<u8>) -> Event {
        Event {
            tick,
            time_s: tick as f64 * tick_period_s,
            vth_code,
        }
    }

    /// Number of IR-UWB symbols this event costs on air: 1 for a bare ATC
    /// pulse, `1 + n_bits` for a D-ATC event pattern (Fig. 2-E: the event
    /// marker plus the digitised threshold level).
    pub fn symbol_cost(&self, vth_bits: u8) -> u64 {
        match self.vth_code {
            None => 1,
            Some(_) => 1 + u64::from(vth_bits),
        }
    }
}

/// An ordered stream of events over a known observation window.
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// let ev = vec![Event { tick: 10, time_s: 0.005, vth_code: Some(3) }];
/// let s = EventStream::new(ev, 2000.0, 1.0);
/// assert_eq!(s.len(), 1);
/// assert!((s.mean_rate_hz() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventStream {
    events: Vec<Event>,
    tick_rate_hz: f64,
    duration_s: f64,
}

impl EventStream {
    /// Wraps events with their timebase. Events must be tick-ordered.
    ///
    /// # Panics
    ///
    /// Panics when events are out of order (a stream is a time series by
    /// contract) or the duration is not positive.
    pub fn new(events: Vec<Event>, tick_rate_hz: f64, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        assert!(
            events.windows(2).all(|w| w[0].tick <= w[1].tick),
            "events must be ordered by tick"
        );
        EventStream {
            events,
            tick_rate_hz,
            duration_s,
        }
    }

    /// Wraps events whose tick order is guaranteed by construction (the
    /// streaming kernels emit in tick order) without the O(n) ordering
    /// re-scan of [`new`](EventStream::new) — on a 64-channel fleet that
    /// scan rereads every cache-cold event buffer once per encode.
    /// Ordering is still checked in debug builds.
    ///
    /// # Panics
    ///
    /// Panics when the duration is not positive (and, in debug builds,
    /// when events are out of order).
    pub fn from_ordered(events: Vec<Event>, tick_rate_hz: f64, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        debug_assert!(
            events.windows(2).all(|w| w[0].tick <= w[1].tick),
            "events must be ordered by tick"
        );
        EventStream {
            events,
            tick_rate_hz,
            duration_s,
        }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events (the paper's "transmitted events").
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The tick rate the `tick` fields are expressed in (Hz).
    pub fn tick_rate_hz(&self) -> f64 {
        self.tick_rate_hz
    }

    /// Observation-window length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Mean firing rate over the observation window (events/s).
    pub fn mean_rate_hz(&self) -> f64 {
        self.events.len() as f64 / self.duration_s
    }

    /// Total on-air symbol count (Sec. III-B accounting): ATC events cost
    /// 1 symbol, D-ATC events cost `1 + vth_bits`.
    pub fn symbol_count(&self, vth_bits: u8) -> u64 {
        self.events.iter().map(|e| e.symbol_cost(vth_bits)).sum()
    }

    /// Event count inside `[t0, t1)` seconds.
    pub fn count_in_window(&self, t0: f64, t1: f64) -> usize {
        self.events
            .iter()
            .filter(|e| e.time_s >= t0 && e.time_s < t1)
            .count()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, t: f64, code: Option<u8>) -> Event {
        Event {
            tick,
            time_s: t,
            vth_code: code,
        }
    }

    #[test]
    fn symbol_costs_match_paper_accounting() {
        let atc = ev(0, 0.0, None);
        let datc = ev(0, 0.0, Some(7));
        assert_eq!(atc.symbol_cost(4), 1);
        assert_eq!(datc.symbol_cost(4), 5); // the paper's "3724×5" factor
    }

    #[test]
    fn stream_symbol_count_sums() {
        let s = EventStream::new(
            vec![
                ev(0, 0.0, Some(1)),
                ev(1, 0.001, Some(2)),
                ev(2, 0.002, Some(3)),
            ],
            2000.0,
            1.0,
        );
        assert_eq!(s.symbol_count(4), 15);
    }

    #[test]
    fn window_counting() {
        let s = EventStream::new(
            vec![ev(0, 0.1, None), ev(1, 0.2, None), ev(2, 0.9, None)],
            1000.0,
            1.0,
        );
        assert_eq!(s.count_in_window(0.0, 0.5), 2);
        assert_eq!(s.count_in_window(0.5, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "ordered by tick")]
    fn unordered_events_rejected() {
        let _ = EventStream::new(vec![ev(5, 0.5, None), ev(1, 0.1, None)], 1000.0, 1.0);
    }

    #[test]
    fn iteration_works() {
        let s = EventStream::new(vec![ev(0, 0.0, None)], 1000.0, 1.0);
        assert_eq!((&s).into_iter().count(), 1);
    }
}
