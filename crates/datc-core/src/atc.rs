//! Fixed-threshold Average Threshold Crossing (ATC) — the baseline scheme
//! of Crepaldi et al. (BioCAS 2012, Ref. [10]) that D-ATC is compared
//! against.
//!
//! ATC radiates one bare IR-UWB pulse on every positive crossing of a
//! *fixed* threshold `Vth`. "The average number of radiated pulses is …
//! proportional to the applied muscle force" — but only when the signal
//! amplitude suits the chosen threshold, which is exactly the weakness the
//! paper demonstrates (Fig. 2-B/C, Fig. 5).

use crate::comparator::Comparator;
use crate::event::{Event, EventStream};
use datc_signal::Signal;
use serde::{Deserialize, Serialize};

/// Fixed-threshold ATC encoder.
///
/// # Example
///
/// ```
/// use datc_core::atc::AtcEncoder;
/// use datc_signal::Signal;
///
/// let s = Signal::from_fn(2500.0, 1.0, |t| (40.0 * t).sin().abs());
/// let events = AtcEncoder::new(0.3).encode(&s);
/// assert!(!events.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtcEncoder {
    vth: f64,
    hysteresis_v: f64,
}

impl AtcEncoder {
    /// Creates an encoder with fixed threshold `vth` volts.
    ///
    /// # Panics
    ///
    /// Panics when `vth` is not finite.
    pub fn new(vth: f64) -> Self {
        assert!(vth.is_finite(), "threshold must be finite");
        AtcEncoder {
            vth,
            hysteresis_v: 0.0,
        }
    }

    /// Adds comparator hysteresis (volts).
    pub fn with_hysteresis(mut self, hysteresis_v: f64) -> Self {
        self.hysteresis_v = hysteresis_v.max(0.0);
        self
    }

    /// The fixed threshold in volts.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Asynchronous encoding: one event per positive crossing of the
    /// rectified input, detected at the signal's own sample rate (the
    /// comparator in the original ATC chipset is not clocked).
    pub fn encode(&self, rectified: &Signal) -> EventStream {
        let mut comp = Comparator::ideal().with_hysteresis(self.hysteresis_v);
        let fs = rectified.sample_rate();
        let mut events = Vec::new();
        let mut prev = false;
        for (i, &x) in rectified.samples().iter().enumerate() {
            let now = comp.compare(x, self.vth);
            if now && !prev {
                events.push(Event {
                    tick: i as u64,
                    time_s: i as f64 / fs,
                    vth_code: None,
                });
            }
            prev = now;
        }
        EventStream::new(events, fs, rectified.duration().max(f64::MIN_POSITIVE))
    }

    /// Clocked encoding: the comparator output is re-sampled at
    /// `clock_hz` before edge detection (for apples-to-apples comparisons
    /// with the clocked D-ATC).
    pub fn encode_clocked(&self, rectified: &Signal, clock_hz: f64) -> EventStream {
        let mut comp = Comparator::ideal().with_hysteresis(self.hysteresis_v);
        let fs = rectified.sample_rate();
        let n = rectified.len();
        let n_ticks = (rectified.duration() * clock_hz).floor() as u64;
        let mut events = Vec::new();
        let mut prev = false;
        for k in 0..n_ticks {
            let t = k as f64 / clock_hz;
            let idx = ((t * fs) as usize).min(n.saturating_sub(1));
            let now = comp.compare(rectified.samples()[idx], self.vth);
            if now && !prev {
                events.push(Event {
                    tick: k,
                    time_s: t,
                    vth_code: None,
                });
            }
            prev = now;
        }
        EventStream::new(events, clock_hz, rectified.duration().max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_each_positive_crossing_once() {
        // |sin| at 10 Hz crosses 0.5 upward twice per period (two humps
        // per period of the underlying 10 Hz sine → 20 humps in 1 s).
        let s = Signal::from_fn(10_000.0, 1.0, |t| {
            (2.0 * std::f64::consts::PI * 10.0 * t).sin().abs()
        });
        let ev = AtcEncoder::new(0.5).encode(&s);
        assert_eq!(ev.len(), 20);
    }

    #[test]
    fn threshold_above_signal_yields_no_events() {
        let s = Signal::from_fn(2500.0, 1.0, |t| 0.2 * (t * 300.0).sin().abs());
        let ev = AtcEncoder::new(0.3).encode(&s);
        assert!(ev.is_empty());
    }

    #[test]
    fn lower_threshold_never_fires_less() {
        let s = Signal::from_fn(2500.0, 2.0, |t| {
            ((t * 97.0).sin() * (t * 13.0).cos()).abs() * 0.8
        });
        let hi = AtcEncoder::new(0.5).encode(&s).len();
        let lo = AtcEncoder::new(0.1).encode(&s).len();
        assert!(lo >= hi, "lo {lo} hi {hi}");
    }

    #[test]
    fn clocked_encoding_bounds_event_rate() {
        // At a 2 kHz clock, at most 1 kHz of rising edges are observable.
        let s = Signal::from_fn(20_000.0, 1.0, |t| {
            (2.0 * std::f64::consts::PI * 900.0 * t).sin().abs()
        });
        let ev = AtcEncoder::new(0.5).encode_clocked(&s, 2000.0);
        assert!(ev.len() as f64 <= 1000.0);
    }

    #[test]
    fn events_are_bare_pulses() {
        let s = Signal::from_fn(2500.0, 0.5, |t| (t * 200.0).sin().abs());
        let ev = AtcEncoder::new(0.3).encode(&s);
        assert!(ev.iter().all(|e| e.vth_code.is_none()));
        assert_eq!(ev.symbol_count(4), ev.len() as u64);
    }

    #[test]
    fn hysteresis_reduces_chatter_on_noisy_signal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| 0.3 + 0.01 * (rng.gen::<f64>() - 0.5))
            .collect();
        let s = Signal::from_samples(samples, 2500.0);
        let plain = AtcEncoder::new(0.3).encode(&s).len();
        let hyst = AtcEncoder::new(0.3).with_hysteresis(0.05).encode(&s).len();
        assert!(hyst < plain / 10, "hyst {hyst} plain {plain}");
    }
}
