//! Fixed-threshold Average Threshold Crossing (ATC) — the baseline scheme
//! of Crepaldi et al. (BioCAS 2012, Ref. \[10\]) that D-ATC is compared
//! against.
//!
//! ATC radiates one bare IR-UWB pulse on every positive crossing of a
//! *fixed* threshold `Vth`. "The average number of radiated pulses is …
//! proportional to the applied muscle force" — but only when the signal
//! amplitude suits the chosen threshold, which is exactly the weakness the
//! paper demonstrates (Fig. 2-B/C, Fig. 5).
//!
//! Since the unified-API redesign, [`AtcEncoder`] implements
//! [`SpikeEncoder`] and returns an [`AtcOutput`] shaped like
//! [`DatcOutput`](crate::datc::DatcOutput) (events + duty cycle + opt-in
//! comparator trace) instead of the old bare
//! [`EventStream`].

use crate::comparator::Comparator;
use crate::encoder::{EncodedOutput, SpikeEncoder, TraceLevel};
use crate::event::{Event, EventStream};
use datc_signal::resample::ZohResampler;
use datc_signal::Signal;
use serde::{Deserialize, Serialize};

/// Everything the ATC encoder produces for one input signal — the same
/// shape as [`DatcOutput`](crate::datc::DatcOutput), minus the threshold
/// traces a fixed threshold does not have.
#[derive(Debug, Clone, PartialEq)]
pub struct AtcOutput {
    /// Threshold-crossing events (bare pulses: `vth_code` is `None`).
    pub events: EventStream,
    /// The comparator bit at every evaluated instant. Empty below
    /// [`TraceLevel::Full`].
    pub d_out: Vec<bool>,
    /// Instants evaluated — always populated, at every trace level.
    pub ticks: u64,
    /// Instants with the comparator high — always populated.
    pub ones: u64,
}

impl AtcOutput {
    /// Fraction of evaluated instants with the comparator high.
    pub fn duty_cycle(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.ones as f64 / self.ticks as f64
    }
}

impl EncodedOutput for AtcOutput {
    fn events(&self) -> &EventStream {
        &self.events
    }

    fn into_events(self) -> EventStream {
        self.events
    }

    fn duty_cycle(&self) -> f64 {
        AtcOutput::duty_cycle(self)
    }
}

/// Fixed-threshold ATC encoder.
///
/// # Example
///
/// ```
/// use datc_core::atc::AtcEncoder;
/// use datc_core::SpikeEncoder;
/// use datc_signal::Signal;
///
/// let s = Signal::from_fn(2500.0, 1.0, |t| (40.0 * t).sin().abs());
/// let out = AtcEncoder::new(0.3).encode(&s);
/// assert!(!out.events.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtcEncoder {
    vth: f64,
    hysteresis_v: f64,
    trace: TraceLevel,
}

impl AtcEncoder {
    /// Creates an encoder with fixed threshold `vth` volts.
    ///
    /// # Panics
    ///
    /// Panics when `vth` is not finite.
    pub fn new(vth: f64) -> Self {
        assert!(vth.is_finite(), "threshold must be finite");
        AtcEncoder {
            vth,
            hysteresis_v: 0.0,
            trace: TraceLevel::default(),
        }
    }

    /// Adds comparator hysteresis (volts).
    pub fn with_hysteresis(mut self, hysteresis_v: f64) -> Self {
        self.hysteresis_v = hysteresis_v.max(0.0);
        self
    }

    /// Selects how much trace data [`encode`](SpikeEncoder::encode)
    /// materialises.
    pub fn with_trace_level(mut self, trace: TraceLevel) -> Self {
        self.trace = trace;
        self
    }

    /// The fixed threshold in volts.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Shared edge-detection loop over an iterator of input samples.
    fn run<I: Iterator<Item = f64>>(&self, xs: I, tick_rate_hz: f64, duration_s: f64) -> AtcOutput {
        let mut comp = Comparator::ideal().with_hysteresis(self.hysteresis_v);
        let keep_trace = self.trace == TraceLevel::Full;
        let mut events = Vec::new();
        let mut d_out = Vec::new();
        let mut ticks = 0u64;
        let mut ones = 0u64;
        let mut prev = false;
        for (i, x) in xs.enumerate() {
            let now = comp.compare(x, self.vth);
            if now && !prev {
                events.push(Event {
                    tick: i as u64,
                    time_s: i as f64 / tick_rate_hz,
                    vth_code: None,
                });
            }
            prev = now;
            ticks += 1;
            ones += u64::from(now);
            if keep_trace {
                d_out.push(now);
            }
        }
        AtcOutput {
            events: EventStream::new(events, tick_rate_hz, duration_s.max(f64::MIN_POSITIVE)),
            d_out,
            ticks,
            ones,
        }
    }

    /// Clocked encoding: the comparator output is re-sampled at
    /// `clock_hz` before edge detection (for apples-to-apples comparisons
    /// with the clocked D-ATC), using the same exact rational zero-order
    /// hold as the D-ATC kernel.
    pub fn encode_clocked(&self, rectified: &Signal, clock_hz: f64) -> AtcOutput {
        let zoh = ZohResampler::new(rectified.sample_rate(), clock_hz);
        let n = rectified.len();
        let n_ticks = zoh.ticks_for_len(n);
        let samples = rectified.samples();
        let last = n.saturating_sub(1);
        self.run(
            (0..n_ticks).map(|k| samples[zoh.index(k).min(last)]),
            clock_hz,
            rectified.duration(),
        )
    }
}

impl SpikeEncoder for AtcEncoder {
    type Output = AtcOutput;

    /// Asynchronous encoding: one event per positive crossing of the
    /// rectified input, detected at the signal's own sample rate (the
    /// comparator in the original ATC chipset is not clocked).
    fn encode(&self, rectified: &Signal) -> AtcOutput {
        self.run(
            rectified.samples().iter().copied(),
            rectified.sample_rate(),
            rectified.duration(),
        )
    }

    fn vth_bits(&self) -> u8 {
        0
    }

    fn scheme(&self) -> &'static str {
        "atc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_each_positive_crossing_once() {
        // |sin| at 10 Hz crosses 0.5 upward twice per period (two humps
        // per period of the underlying 10 Hz sine → 20 humps in 1 s).
        let s = Signal::from_fn(10_000.0, 1.0, |t| {
            (2.0 * std::f64::consts::PI * 10.0 * t).sin().abs()
        });
        let ev = AtcEncoder::new(0.5).encode(&s).events;
        assert_eq!(ev.len(), 20);
    }

    #[test]
    fn threshold_above_signal_yields_no_events() {
        let s = Signal::from_fn(2500.0, 1.0, |t| 0.2 * (t * 300.0).sin().abs());
        let out = AtcEncoder::new(0.3).encode(&s);
        assert!(out.events.is_empty());
        assert_eq!(out.duty_cycle(), 0.0);
    }

    #[test]
    fn lower_threshold_never_fires_less() {
        let s = Signal::from_fn(2500.0, 2.0, |t| {
            ((t * 97.0).sin() * (t * 13.0).cos()).abs() * 0.8
        });
        let hi = AtcEncoder::new(0.5).encode(&s).events.len();
        let lo = AtcEncoder::new(0.1).encode(&s).events.len();
        assert!(lo >= hi, "lo {lo} hi {hi}");
    }

    #[test]
    fn clocked_encoding_bounds_event_rate() {
        // At a 2 kHz clock, at most 1 kHz of rising edges are observable.
        let s = Signal::from_fn(20_000.0, 1.0, |t| {
            (2.0 * std::f64::consts::PI * 900.0 * t).sin().abs()
        });
        let out = AtcEncoder::new(0.5).encode_clocked(&s, 2000.0);
        assert!(out.events.len() as f64 <= 1000.0);
    }

    #[test]
    fn events_are_bare_pulses() {
        let s = Signal::from_fn(2500.0, 0.5, |t| (t * 200.0).sin().abs());
        let ev = AtcEncoder::new(0.3).encode(&s).events;
        assert!(ev.iter().all(|e| e.vth_code.is_none()));
        assert_eq!(ev.symbol_count(4), ev.len() as u64);
    }

    #[test]
    fn duty_cycle_tracks_time_above_threshold() {
        // |sin| spends a known fraction of time above 0.5: 2/3.
        let s = Signal::from_fn(10_000.0, 2.0, |t| {
            (2.0 * std::f64::consts::PI * 5.0 * t).sin().abs()
        });
        let out = AtcEncoder::new(0.5).encode(&s);
        assert!(
            (out.duty_cycle() - 2.0 / 3.0).abs() < 0.01,
            "{}",
            out.duty_cycle()
        );
        // counters agree with the materialised trace at TraceLevel::Full
        let from_trace = out.d_out.iter().filter(|&&b| b).count() as f64 / out.d_out.len() as f64;
        assert!((out.duty_cycle() - from_trace).abs() < 1e-15);
    }

    #[test]
    fn events_trace_level_skips_d_out() {
        let s = Signal::from_fn(2500.0, 1.0, |t| (t * 80.0).sin().abs());
        let lean = AtcEncoder::new(0.3)
            .with_trace_level(TraceLevel::Events)
            .encode(&s);
        let full = AtcEncoder::new(0.3).encode(&s);
        assert!(lean.d_out.is_empty());
        assert_eq!(full.d_out.len(), s.len());
        assert_eq!(lean.events, full.events);
        assert!((lean.duty_cycle() - full.duty_cycle()).abs() < 1e-15);
    }

    #[test]
    fn scheme_metadata() {
        let enc = AtcEncoder::new(0.3);
        assert_eq!(enc.scheme(), "atc");
        assert_eq!(enc.vth_bits(), 0);
    }

    #[test]
    fn hysteresis_reduces_chatter_on_noisy_signal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| 0.3 + 0.01 * (rng.gen::<f64>() - 0.5))
            .collect();
        let s = Signal::from_samples(samples, 2500.0);
        let plain = AtcEncoder::new(0.3).encode(&s).events.len();
        let hyst = AtcEncoder::new(0.3)
            .with_hysteresis(0.05)
            .encode(&s)
            .events
            .len();
        assert!(hyst < plain / 10, "hyst {hyst} plain {plain}");
    }
}
