//! The threshold DAC (Fig. 1): converts the DTC's `Set_Vth` code to the
//! comparator threshold, `Vth = Vref·code/2^Nb` (Eqn. 3 of the paper).

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// An `n_bits` DAC with reference voltage `vref` and optional static
/// non-linearity (per-code INL offsets) to study non-ideal converters.
///
/// The paper uses `n_bits = 4`, `vref = 1 V`, giving 16 levels with a
/// 62.5 mV step — "accurate enough for this application" (Sec. III-A).
///
/// # Example
///
/// ```
/// use datc_core::dac::Dac;
/// let dac = Dac::paper();
/// assert!((dac.voltage(8).unwrap() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    n_bits: u8,
    vref: f64,
    inl: Option<Vec<f64>>,
}

impl Dac {
    /// Creates an ideal DAC.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for `n_bits` outside `1..=16`
    /// or a non-positive `vref`.
    pub fn new(n_bits: u8, vref: f64) -> Result<Self, CoreError> {
        if n_bits == 0 || n_bits > 16 {
            return Err(CoreError::InvalidConfig {
                field: "n_bits",
                reason: format!("must be in 1..=16, got {n_bits}"),
            });
        }
        if !(vref.is_finite() && vref > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "vref",
                reason: format!("must be positive and finite, got {vref}"),
            });
        }
        Ok(Dac {
            n_bits,
            vref,
            inl: None,
        })
    }

    /// The paper's converter: 4 bits, 1 V reference.
    pub fn paper() -> Self {
        Dac::new(4, 1.0).expect("paper parameters are valid")
    }

    /// Attaches integral-non-linearity offsets (volts, one per code).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the table length differs
    /// from `2^n_bits`.
    pub fn with_inl(mut self, inl: Vec<f64>) -> Result<Self, CoreError> {
        if inl.len() != self.level_count() {
            return Err(CoreError::InvalidConfig {
                field: "inl",
                reason: format!(
                    "INL table must have {} entries, got {}",
                    self.level_count(),
                    inl.len()
                ),
            });
        }
        self.inl = Some(inl);
        Ok(self)
    }

    /// Resolution in bits.
    pub fn n_bits(&self) -> u8 {
        self.n_bits
    }

    /// Reference voltage in volts.
    pub fn vref(&self) -> f64 {
        self.vref
    }

    /// Number of representable levels (`2^n_bits`).
    pub fn level_count(&self) -> usize {
        1usize << self.n_bits
    }

    /// One LSB step in volts.
    pub fn lsb(&self) -> f64 {
        self.vref / self.level_count() as f64
    }

    /// Output voltage for `code` (Eqn. 3, plus INL when configured).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CodeOutOfRange`] when `code >= 2^n_bits`.
    pub fn voltage(&self, code: u16) -> Result<f64, CoreError> {
        if usize::from(code) >= self.level_count() {
            return Err(CoreError::CodeOutOfRange {
                code,
                n_bits: self.n_bits,
            });
        }
        let ideal = self.vref * f64::from(code) / self.level_count() as f64;
        let err = self
            .inl
            .as_ref()
            .map(|t| t[usize::from(code)])
            .unwrap_or(0.0);
        Ok(ideal + err)
    }

    /// The full code→voltage transfer function as a table: entry `c`
    /// equals `voltage(c)`, INL included.
    ///
    /// Hot loops index this once-built table instead of paying the
    /// fallible [`voltage`](Dac::voltage) range check per tick; with
    /// `dac_bits ≤ 8` (the encoder limit) it is at most 256 entries and
    /// lives comfortably in one or two cache lines.
    pub fn voltage_table(&self) -> Vec<f64> {
        (0..self.level_count())
            .map(|c| self.voltage(c as u16).expect("codes below level_count"))
            .collect()
    }

    /// The nearest code whose ideal output does not exceed `v` (used by
    /// tests to invert the transfer function).
    pub fn code_for_voltage(&self, v: f64) -> u16 {
        let code = (v / self.lsb()).floor();
        code.clamp(0.0, (self.level_count() - 1) as f64) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dac_levels() {
        let dac = Dac::paper();
        assert_eq!(dac.level_count(), 16);
        assert!((dac.lsb() - 0.0625).abs() < 1e-12);
        assert_eq!(dac.voltage(0).unwrap(), 0.0);
        assert!((dac.voltage(15).unwrap() - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn transfer_is_monotonic() {
        let dac = Dac::paper();
        let mut last = -1.0;
        for c in 0..16 {
            let v = dac.voltage(c).unwrap();
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn out_of_range_code_rejected() {
        let dac = Dac::paper();
        assert!(matches!(
            dac.voltage(16),
            Err(CoreError::CodeOutOfRange {
                code: 16,
                n_bits: 4
            })
        ));
    }

    #[test]
    fn inl_shifts_levels() {
        let mut inl = vec![0.0; 16];
        inl[8] = 0.01;
        let dac = Dac::paper().with_inl(inl).unwrap();
        assert!((dac.voltage(8).unwrap() - 0.51).abs() < 1e-12);
    }

    #[test]
    fn inl_wrong_length_rejected() {
        assert!(Dac::paper().with_inl(vec![0.0; 3]).is_err());
    }

    #[test]
    fn voltage_table_matches_per_code_lookups() {
        let mut inl = vec![0.0; 16];
        inl[3] = -0.004;
        inl[12] = 0.007;
        let dac = Dac::paper().with_inl(inl).unwrap();
        let table = dac.voltage_table();
        assert_eq!(table.len(), 16);
        for c in 0..16u16 {
            assert_eq!(table[usize::from(c)], dac.voltage(c).unwrap());
        }
        // full-resolution converters (beyond the encoder's 8-bit cap)
        // must still get a complete table
        assert_eq!(Dac::new(16, 1.0).unwrap().voltage_table().len(), 65_536);
    }

    #[test]
    fn code_for_voltage_inverts() {
        let dac = Dac::paper();
        for c in 0..16u16 {
            let v = dac.voltage(c).unwrap();
            assert_eq!(dac.code_for_voltage(v + 1e-9), c);
        }
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(Dac::new(0, 1.0).is_err());
        assert!(Dac::new(17, 1.0).is_err());
        assert!(Dac::new(4, 0.0).is_err());
        assert!(Dac::new(4, f64::NAN).is_err());
    }
}
