//! Error types for the encoder crate.

use std::error::Error;
use std::fmt;

/// Errors produced by encoder configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Constraint description.
        reason: String,
    },
    /// A DAC code exceeded the converter's range.
    CodeOutOfRange {
        /// The offending code.
        code: u16,
        /// Number of DAC bits.
        n_bits: u8,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            CoreError::CodeOutOfRange { code, n_bits } => {
                write!(f, "DAC code {code} out of range for {n_bits}-bit converter")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = CoreError::InvalidConfig {
            field: "clock_hz",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("clock_hz"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
