//! # datc-core — ATC and D-ATC spike encoders
//!
//! This crate implements the primary contribution of Shahshahani et al.,
//! *DATE 2015*: **Dynamic Average Threshold Crossing (D-ATC)**, an
//! all-digital spike-based encoding of sEMG for IR-UWB muscle-force
//! transmission, together with the fixed-threshold **ATC** baseline it is
//! compared against — both behind the unified [`SpikeEncoder`] trait.
//!
//! ## The unified encoder API
//!
//! Every encoding scheme implements [`SpikeEncoder`]: rectified sEMG in,
//! an [`EncodedOutput`] (events + duty cycle + scheme-specific traces)
//! out. One cycle-accurate kernel ([`stream::DatcStream`]) backs every
//! D-ATC entry point:
//!
//! * batch [`DatcEncoder::encode`](encoder::SpikeEncoder::encode) — a
//!   thin driver over the kernel, with trace capture governed by
//!   [`TraceLevel`] in the [`DatcConfig`];
//! * per-tick [`stream::DatcStream::tick`] — the silicon-shaped
//!   real-time interface;
//! * chunked [`stream::DatcStream::push_chunk`] — clock-rate slices into
//!   a [`TickSink`](encoder::TickSink), the zero-per-tick-allocation
//!   fast path.
//!
//! Multi-channel systems fan out through an [`EncoderBank`] into the AER
//! merger of `datc-uwb`, and whole transmit→receive chains compose with
//! the `Link` builder in `datc-rx`.
//!
//! ## Throughput
//!
//! The hot path is integer-domain and LUT-folded: every entry point
//! converts threshold codes through a DAC table precomputed at
//! construction ([`Dac::voltage_table`](dac::Dac::voltage_table)) —
//! never the fallible per-tick `Dac::voltage` — and `1/clock_hz` and
//! the ZOH end clamp are hoisted out of the tick loops. For N-channel
//! workloads, [`bank::BankStream`] holds all per-channel state in
//! parallel arrays and, for event-level sinks, packs 64 comparator
//! decisions per word so `In_reg` delay, edge detection and duty
//! counting become shifts, masks and popcounts (AVX-accelerated where
//! the CPU allows, runtime-detected, bit-identical either way). The
//! multi-threaded fleet driver over it lives in `datc-engine`;
//! measured rates are tracked in `BENCH_fleet.json` at the workspace
//! root.
//!
//! The hardware blocks mirror the paper's Fig. 1/Fig. 4:
//!
//! * [`frontend::AnalogFrontEnd`] — preamplifier gain, saturation and
//!   full-wave rectification;
//! * [`comparator::Comparator`] — the analog comparator (with optional
//!   offset, hysteresis and input-referred noise);
//! * [`dac::Dac`] — the 4-bit threshold DAC, `Vth = Vref·code/2^Nb`
//!   (Eqn. 3);
//! * [`dtc::Dtc`] — the Dynamic Threshold Controller: per-frame `'1'`
//!   counting, three-frame weighted history
//!   `AVR = (1.0·N₃ + 0.65·N₂ + 0.35·N₁)/2`, interval LUT
//!   `level_k = 0.03·(k+1)·frame_size` (Eqn. 2) and the threshold
//!   predictor (Listing 1) — in both floating-point reference and
//!   bit-accurate fixed-point (hardware) arithmetic.
//!
//! ## Quick example
//!
//! ```
//! use datc_core::{DatcConfig, DatcEncoder, SpikeEncoder};
//! use datc_signal::Signal;
//!
//! let signal = Signal::from_fn(2500.0, 1.0, |t| (t * 40.0).sin().abs() * 0.5);
//! let encoder = DatcEncoder::new(DatcConfig::paper());
//! let out = encoder.encode(&signal);
//! assert!(!out.events.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod atc;
pub mod bank;
pub mod comparator;
pub mod config;
pub mod dac;
pub mod datc;
pub mod dtc;
pub mod encoder;
pub mod error;
pub mod event;
pub mod frontend;
pub mod stream;

pub use bank::{BankCountingSink, BankEventSink, BankSink, BankStream};
pub use config::{DatcConfig, FrameSize};
pub use datc::{DatcEncoder, DatcOutput};
pub use encoder::{EncodedOutput, EncoderBank, SpikeEncoder, TraceLevel};
pub use error::CoreError;
pub use event::{Event, EventStream};
