//! Encoder configuration.

use crate::encoder::TraceLevel;
use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// The programmable frame length (the paper's 2-bit `Frame_selector`):
/// 100, 200, 400 or 800 system-clock periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FrameSize {
    /// 100 clock periods (50 ms at 2 kHz) — the most reactive setting.
    #[default]
    F100,
    /// 200 clock periods (100 ms at 2 kHz).
    F200,
    /// 400 clock periods (200 ms at 2 kHz).
    F400,
    /// 800 clock periods (400 ms at 2 kHz) — the smoothest setting.
    F800,
}

impl FrameSize {
    /// All selectable frame sizes, in selector order.
    pub const ALL: [FrameSize; 4] = [
        FrameSize::F100,
        FrameSize::F200,
        FrameSize::F400,
        FrameSize::F800,
    ];

    /// Frame length in clock periods.
    #[allow(clippy::len_without_is_empty)] // a duration, not a container
    pub fn len(&self) -> u32 {
        match self {
            FrameSize::F100 => 100,
            FrameSize::F200 => 200,
            FrameSize::F400 => 400,
            FrameSize::F800 => 800,
        }
    }

    /// The 2-bit selector value wired into the hardware.
    pub fn selector(&self) -> u8 {
        match self {
            FrameSize::F100 => 0b00,
            FrameSize::F200 => 0b01,
            FrameSize::F400 => 0b10,
            FrameSize::F800 => 0b11,
        }
    }

    /// Builds a frame size from the 2-bit selector.
    pub fn from_selector(sel: u8) -> Option<FrameSize> {
        match sel {
            0b00 => Some(FrameSize::F100),
            0b01 => Some(FrameSize::F200),
            0b10 => Some(FrameSize::F400),
            0b11 => Some(FrameSize::F800),
            _ => None,
        }
    }
}

/// The DTC arithmetic implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Arithmetic {
    /// Bit-accurate integer arithmetic as synthesised in hardware
    /// (weights quantised to 1/256, divide-by-2 folded into a shift).
    #[default]
    Fixed,
    /// Double-precision reference implementation of Listing 1.
    Float,
}

/// Full D-ATC encoder configuration.
///
/// Use [`DatcConfig::paper`] for the paper's operating point and the
/// builder methods to deviate from it.
///
/// # Example
///
/// ```
/// use datc_core::config::{DatcConfig, FrameSize};
/// let cfg = DatcConfig::paper().with_frame_size(FrameSize::F200);
/// assert_eq!(cfg.frame_size, FrameSize::F200);
/// assert_eq!(cfg.clock_hz, 2000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatcConfig {
    /// DTC system clock in Hz (paper: 2 kHz = 2·f_sEMG, Nyquist for the
    /// ~1 kHz sEMG bandwidth).
    pub clock_hz: f64,
    /// Frame length selector.
    pub frame_size: FrameSize,
    /// DAC resolution in bits (paper: 4).
    pub dac_bits: u8,
    /// DAC reference voltage in volts (paper: 1.0).
    pub vref: f64,
    /// History weights `(W_F3, W_F2, W_F1)` for the newest, middle and
    /// oldest frame (paper: 1.0, 0.65, 0.35 — "determined empirically").
    pub weights: (f64, f64, f64),
    /// Interval step as a fraction of frame size: `level_k =
    /// step·(k+1)·frame_size` (paper: 0.03, Eqn. 2).
    pub interval_step: f64,
    /// Threshold code the controller starts from (the paper's floor code
    /// is 1; starting low lets the controller ramp up within 3 frames).
    pub initial_code: u8,
    /// Arithmetic implementation.
    pub arithmetic: Arithmetic,
    /// How much per-tick trace data batch encoding materialises
    /// ([`TraceLevel::Full`] reproduces the paper's figures; hot paths
    /// use [`TraceLevel::Events`] to keep the tick loop allocation-free).
    pub trace: TraceLevel,
}

impl DatcConfig {
    /// The paper's operating point: 2 kHz clock, frame 100, 4-bit DAC with
    /// 1 V reference, weights (1, 0.65, 0.35), 0.03 interval step,
    /// fixed-point arithmetic.
    pub fn paper() -> Self {
        DatcConfig {
            clock_hz: 2000.0,
            frame_size: FrameSize::F100,
            dac_bits: 4,
            vref: 1.0,
            weights: (1.0, 0.65, 0.35),
            interval_step: 0.03,
            initial_code: 1,
            arithmetic: Arithmetic::Fixed,
            trace: TraceLevel::Full,
        }
    }

    /// Replaces the frame size.
    pub fn with_frame_size(mut self, fs: FrameSize) -> Self {
        self.frame_size = fs;
        self
    }

    /// Replaces the DAC resolution (for the paper's "different DAC
    /// resolution have been examined" ablation).
    pub fn with_dac_bits(mut self, bits: u8) -> Self {
        self.dac_bits = bits;
        self
    }

    /// Replaces the history weights.
    pub fn with_weights(mut self, w3: f64, w2: f64, w1: f64) -> Self {
        self.weights = (w3, w2, w1);
        self
    }

    /// Replaces the arithmetic implementation.
    pub fn with_arithmetic(mut self, a: Arithmetic) -> Self {
        self.arithmetic = a;
        self
    }

    /// Replaces the DTC clock.
    pub fn with_clock_hz(mut self, clock_hz: f64) -> Self {
        self.clock_hz = clock_hz;
        self
    }

    /// Replaces the trace-capture level.
    pub fn with_trace_level(mut self, trace: TraceLevel) -> Self {
        self.trace = trace;
        self
    }

    /// Maximum threshold code (`2^dac_bits - 1`).
    pub fn max_code(&self) -> u8 {
        ((1u16 << self.dac_bits) - 1) as u8
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.clock_hz.is_finite() && self.clock_hz > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "clock_hz",
                reason: format!("must be positive and finite, got {}", self.clock_hz),
            });
        }
        if self.dac_bits == 0 || self.dac_bits > 8 {
            return Err(CoreError::InvalidConfig {
                field: "dac_bits",
                reason: format!("must be in 1..=8, got {}", self.dac_bits),
            });
        }
        if !(self.vref.is_finite() && self.vref > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "vref",
                reason: format!("must be positive and finite, got {}", self.vref),
            });
        }
        let (w3, w2, w1) = self.weights;
        if !(w3 > 0.0
            && w2 >= 0.0
            && w1 >= 0.0
            && w3.is_finite()
            && w2.is_finite()
            && w1.is_finite())
        {
            return Err(CoreError::InvalidConfig {
                field: "weights",
                reason: format!(
                    "newest weight must be positive, all finite; got {:?}",
                    self.weights
                ),
            });
        }
        if !(self.interval_step > 0.0 && self.interval_step.is_finite()) {
            return Err(CoreError::InvalidConfig {
                field: "interval_step",
                reason: format!("must be positive, got {}", self.interval_step),
            });
        }
        // All interval levels must stay representable: the top level is
        // step·2^bits·frame; it may exceed the max attainable AVR, which is
        // fine, but must not overflow the 10-bit hardware counters scaled
        // by 512 — checked in the fixed-point module.
        if self.initial_code > self.max_code() {
            return Err(CoreError::InvalidConfig {
                field: "initial_code",
                reason: format!(
                    "must be ≤ max code {}, got {}",
                    self.max_code(),
                    self.initial_code
                ),
            });
        }
        Ok(())
    }
}

impl Default for DatcConfig {
    fn default() -> Self {
        DatcConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_paper() {
        let c = DatcConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.clock_hz, 2000.0);
        assert_eq!(c.dac_bits, 4);
        assert_eq!(c.vref, 1.0);
        assert_eq!(c.weights, (1.0, 0.65, 0.35));
        assert_eq!(c.interval_step, 0.03);
        assert_eq!(c.max_code(), 15);
    }

    #[test]
    fn frame_selector_roundtrip() {
        for fs in FrameSize::ALL {
            assert_eq!(FrameSize::from_selector(fs.selector()), Some(fs));
        }
        assert_eq!(FrameSize::from_selector(4), None);
    }

    #[test]
    fn frame_lengths_match_paper() {
        assert_eq!(FrameSize::ALL.map(|f| f.len()), [100, 200, 400, 800]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DatcConfig::paper().with_clock_hz(0.0).validate().is_err());
        assert!(DatcConfig::paper().with_dac_bits(0).validate().is_err());
        assert!(DatcConfig::paper().with_dac_bits(9).validate().is_err());
        assert!(DatcConfig::paper()
            .with_weights(-1.0, 0.5, 0.5)
            .validate()
            .is_err());
        let mut c = DatcConfig::paper();
        c.interval_step = 0.0;
        assert!(c.validate().is_err());
        c = DatcConfig::paper();
        c.initial_code = 200;
        assert!(c.validate().is_err());
    }
}
