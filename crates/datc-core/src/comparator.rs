//! The analog comparator (Fig. 1): produces the 1-bit `D_in` consumed by
//! the DTC. Ideal by default, with optional input offset, hysteresis and
//! input-referred noise for robustness studies.
//!
//! The noise generator is **counter-based**: the sample drawn for the
//! `k`-th comparison is a pure function of `(seed, k)` (a splitmix64
//! lane — the stream generator the xoshiro family seeds from — feeding
//! an Irwin–Hall Gaussian approximation). That makes the sequence
//! reproducible *by position*, which is what lets the struct-of-arrays
//! [`BankStream`](crate::bank::BankStream) evaluate channel `c`'s noise
//! at tick `k` without carrying sequential RNG state through its
//! vectorised span kernel — non-ideal bank fleets are bit-exact with N
//! independent [`DatcStream`](crate::stream::DatcStream)s carrying the
//! same comparator configs.

use serde::{Deserialize, Serialize};

/// Behavioural comparator model.
///
/// `compare(x, vth)` returns `true` when the (rectified, amplified) sEMG
/// sample exceeds the DAC threshold. With hysteresis `h`, the switching
/// points become `vth + h/2` (rising) and `vth - h/2` (falling), which
/// suppresses chatter on slow crossings — a knob the paper's analog
/// designers would use.
///
/// # Example
///
/// ```
/// use datc_core::comparator::Comparator;
/// let mut c = Comparator::ideal();
/// assert!(c.compare(0.4, 0.3));
/// assert!(!c.compare(0.2, 0.3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparator {
    offset_v: f64,
    hysteresis_v: f64,
    noise_sigma_v: f64,
    state: bool,
    noise_seed: u64,
    /// Comparisons performed since power-on — the counter the noise lane
    /// is indexed by.
    noise_counter: u64,
}

impl Comparator {
    /// An ideal comparator: no offset, no hysteresis, no noise.
    pub fn ideal() -> Self {
        Comparator {
            offset_v: 0.0,
            hysteresis_v: 0.0,
            noise_sigma_v: 0.0,
            state: false,
            noise_seed: 0x9E3779B97F4A7C15,
            noise_counter: 0,
        }
    }

    /// Sets a static input-referred offset (volts).
    pub fn with_offset(mut self, offset_v: f64) -> Self {
        self.offset_v = offset_v;
        self
    }

    /// Sets the hysteresis width (volts, total).
    pub fn with_hysteresis(mut self, hysteresis_v: f64) -> Self {
        self.hysteresis_v = hysteresis_v.max(0.0);
        self
    }

    /// Sets Gaussian input-referred noise (volts RMS) drawn from the
    /// deterministic counter-based lane keyed by `seed`.
    pub fn with_noise(mut self, sigma_v: f64, seed: u64) -> Self {
        self.noise_sigma_v = sigma_v.max(0.0);
        self.noise_seed = seed | 1;
        self.noise_counter = 0;
        self
    }

    /// The configured offset in volts.
    pub fn offset_v(&self) -> f64 {
        self.offset_v
    }

    /// The configured hysteresis in volts.
    pub fn hysteresis_v(&self) -> f64 {
        self.hysteresis_v
    }

    /// The configured noise level in volts RMS.
    pub fn noise_sigma_v(&self) -> f64 {
        self.noise_sigma_v
    }

    /// The noise lane seed.
    pub fn noise_seed(&self) -> u64 {
        self.noise_seed
    }

    /// `true` when offset, hysteresis and noise are all zero — the
    /// configuration the branch-free ideal kernels handle.
    pub fn is_ideal(&self) -> bool {
        self.offset_v == 0.0 && self.hysteresis_v == 0.0 && self.noise_sigma_v == 0.0
    }

    /// Compares input `x` against threshold `vth`, updating the hysteresis
    /// state.
    pub fn compare(&mut self, x: f64, vth: f64) -> bool {
        let noise = if self.noise_sigma_v > 0.0 {
            let k = self.noise_counter;
            self.noise_counter += 1;
            self.noise_sigma_v * gaussian_at(self.noise_seed, k)
        } else {
            0.0
        };
        let eff = x + self.offset_v + noise;
        let half = self.hysteresis_v / 2.0;
        let threshold = if self.state { vth - half } else { vth + half };
        self.state = eff > threshold;
        self.state
    }

    /// Resets to power-on: hysteresis state low, noise lane rewound to
    /// position 0.
    pub fn reset(&mut self) {
        self.state = false;
        self.noise_counter = 0;
    }
}

impl Default for Comparator {
    fn default() -> Self {
        Comparator::ideal()
    }
}

/// splitmix64 output finalizer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

const PHI: u64 = 0x9E3779B97F4A7C15;

/// The `k`-th sample of the counter-based Gaussian lane keyed by `seed`:
/// three splitmix64 words (positions disjoint across `k`, so consecutive
/// samples share no state) carved into twelve 16-bit uniforms, summed
/// Irwin–Hall-style (≈ N(0,1); the comparator needs speed, not tail
/// fidelity). Pure in `(seed, k)` — the property the SoA bank kernel
/// relies on.
#[inline]
pub(crate) fn gaussian_at(seed: u64, k: u64) -> f64 {
    let s = seed.wrapping_add(k.wrapping_mul(3).wrapping_mul(PHI));
    let mut sum = 0u64;
    for i in 1..=3u64 {
        let mut w = mix64(s.wrapping_add(i.wrapping_mul(PHI)));
        for _ in 0..4 {
            sum += w & 0xFFFF;
            w >>= 16;
        }
    }
    sum as f64 / 65536.0 - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_is_a_strict_threshold() {
        let mut c = Comparator::ideal();
        assert!(!c.compare(0.3, 0.3)); // strict: equal is not above
        assert!(c.compare(0.300001, 0.3));
    }

    #[test]
    fn offset_shifts_threshold() {
        let mut c = Comparator::ideal().with_offset(-0.05);
        assert!(!c.compare(0.32, 0.3));
        assert!(c.compare(0.36, 0.3));
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        let mut c = Comparator::ideal().with_hysteresis(0.1);
        // rising: must exceed vth + 0.05
        assert!(!c.compare(0.34, 0.3));
        assert!(c.compare(0.36, 0.3));
        // once high, stays high until below vth - 0.05
        assert!(c.compare(0.28, 0.3));
        assert!(!c.compare(0.24, 0.3));
    }

    #[test]
    fn noise_produces_stochastic_but_deterministic_decisions() {
        let mut a = Comparator::ideal().with_noise(0.05, 99);
        let mut b = Comparator::ideal().with_noise(0.05, 99);
        let mut flips = 0;
        for _ in 0..1000 {
            let ra = a.compare(0.3, 0.3);
            let rb = b.compare(0.3, 0.3);
            assert_eq!(ra, rb); // same seed, same decisions
            if ra {
                flips += 1;
            }
        }
        // right at threshold with symmetric noise ≈ half the time
        assert!((300..700).contains(&flips), "flips {flips}");
    }

    #[test]
    fn noise_lane_is_pure_in_seed_and_position() {
        // the k-th decision is predictable from (seed, k) alone — the
        // contract the SoA bank kernel's vectorised noise path builds on
        let mut c = Comparator::ideal().with_noise(0.05, 42);
        for k in 0..200u64 {
            let expected = 0.3 + 0.0 + 0.05 * gaussian_at(42 | 1, k) > 0.3;
            assert_eq!(c.compare(0.3, 0.3), expected, "draw {k}");
        }
        // different seeds produce different streams
        let a: Vec<u64> = (0..32).map(|k| gaussian_at(3, k).to_bits()).collect();
        let b: Vec<u64> = (0..32).map(|k| gaussian_at(5, k).to_bits()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn noise_lane_has_unit_scale_and_zero_mean() {
        let n = 100_000u64;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for k in 0..n {
            let g = gaussian_at(12345 | 1, k);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn reset_clears_hysteresis_state_and_rewinds_noise() {
        let mut c = Comparator::ideal().with_hysteresis(0.2);
        assert!(c.compare(0.5, 0.3));
        c.reset();
        // back to the rising threshold
        assert!(!c.compare(0.35, 0.3));

        let mut n = Comparator::ideal().with_noise(0.5, 7);
        let first: Vec<bool> = (0..64).map(|_| n.compare(0.3, 0.3)).collect();
        n.reset();
        let replay: Vec<bool> = (0..64).map(|_| n.compare(0.3, 0.3)).collect();
        assert_eq!(first, replay, "reset rewinds the noise lane");
    }
}
