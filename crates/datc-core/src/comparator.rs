//! The analog comparator (Fig. 1): produces the 1-bit `D_in` consumed by
//! the DTC. Ideal by default, with optional input offset, hysteresis and
//! input-referred noise for robustness studies.

use serde::{Deserialize, Serialize};

/// Behavioural comparator model.
///
/// `compare(x, vth)` returns `true` when the (rectified, amplified) sEMG
/// sample exceeds the DAC threshold. With hysteresis `h`, the switching
/// points become `vth + h/2` (rising) and `vth - h/2` (falling), which
/// suppresses chatter on slow crossings — a knob the paper's analog
/// designers would use.
///
/// # Example
///
/// ```
/// use datc_core::comparator::Comparator;
/// let mut c = Comparator::ideal();
/// assert!(c.compare(0.4, 0.3));
/// assert!(!c.compare(0.2, 0.3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparator {
    offset_v: f64,
    hysteresis_v: f64,
    noise_sigma_v: f64,
    state: bool,
    noise_rng_state: u64,
}

impl Comparator {
    /// An ideal comparator: no offset, no hysteresis, no noise.
    pub fn ideal() -> Self {
        Comparator {
            offset_v: 0.0,
            hysteresis_v: 0.0,
            noise_sigma_v: 0.0,
            state: false,
            noise_rng_state: 0x9E3779B97F4A7C15,
        }
    }

    /// Sets a static input-referred offset (volts).
    pub fn with_offset(mut self, offset_v: f64) -> Self {
        self.offset_v = offset_v;
        self
    }

    /// Sets the hysteresis width (volts, total).
    pub fn with_hysteresis(mut self, hysteresis_v: f64) -> Self {
        self.hysteresis_v = hysteresis_v.max(0.0);
        self
    }

    /// Sets Gaussian input-referred noise (volts RMS) with a deterministic
    /// internal generator seeded by `seed`.
    pub fn with_noise(mut self, sigma_v: f64, seed: u64) -> Self {
        self.noise_sigma_v = sigma_v.max(0.0);
        self.noise_rng_state = seed | 1;
        self
    }

    /// The configured offset in volts.
    pub fn offset_v(&self) -> f64 {
        self.offset_v
    }

    /// The configured hysteresis in volts.
    pub fn hysteresis_v(&self) -> f64 {
        self.hysteresis_v
    }

    /// Compares input `x` against threshold `vth`, updating the hysteresis
    /// state.
    pub fn compare(&mut self, x: f64, vth: f64) -> bool {
        let noise = if self.noise_sigma_v > 0.0 {
            self.noise_sigma_v * self.next_gaussian()
        } else {
            0.0
        };
        let eff = x + self.offset_v + noise;
        let half = self.hysteresis_v / 2.0;
        let threshold = if self.state { vth - half } else { vth + half };
        self.state = eff > threshold;
        self.state
    }

    /// Resets the hysteresis state to low.
    pub fn reset(&mut self) {
        self.state = false;
    }

    // xorshift64* + Box-Muller-lite (sum of 12 uniforms − 6 ≈ N(0,1));
    // the comparator needs speed, not tail fidelity.
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.noise_rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.noise_rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_gaussian(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.next_uniform();
        }
        s - 6.0
    }
}

impl Default for Comparator {
    fn default() -> Self {
        Comparator::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_is_a_strict_threshold() {
        let mut c = Comparator::ideal();
        assert!(!c.compare(0.3, 0.3)); // strict: equal is not above
        assert!(c.compare(0.300001, 0.3));
    }

    #[test]
    fn offset_shifts_threshold() {
        let mut c = Comparator::ideal().with_offset(-0.05);
        assert!(!c.compare(0.32, 0.3));
        assert!(c.compare(0.36, 0.3));
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        let mut c = Comparator::ideal().with_hysteresis(0.1);
        // rising: must exceed vth + 0.05
        assert!(!c.compare(0.34, 0.3));
        assert!(c.compare(0.36, 0.3));
        // once high, stays high until below vth - 0.05
        assert!(c.compare(0.28, 0.3));
        assert!(!c.compare(0.24, 0.3));
    }

    #[test]
    fn noise_produces_stochastic_but_deterministic_decisions() {
        let mut a = Comparator::ideal().with_noise(0.05, 99);
        let mut b = Comparator::ideal().with_noise(0.05, 99);
        let mut flips = 0;
        for _ in 0..1000 {
            let ra = a.compare(0.3, 0.3);
            let rb = b.compare(0.3, 0.3);
            assert_eq!(ra, rb); // same seed, same decisions
            if ra {
                flips += 1;
            }
        }
        // right at threshold with symmetric noise ≈ half the time
        assert!((300..700).contains(&flips), "flips {flips}");
    }

    #[test]
    fn reset_clears_hysteresis_state() {
        let mut c = Comparator::ideal().with_hysteresis(0.2);
        assert!(c.compare(0.5, 0.3));
        c.reset();
        // back to the rising threshold
        assert!(!c.compare(0.35, 0.3));
    }
}
