//! The unified encoder API: the [`SpikeEncoder`] trait, per-tick
//! [`TickSink`] consumers, opt-in trace capture via [`TraceLevel`], and
//! the multi-channel [`EncoderBank`].
//!
//! Every spike-encoding scheme in the workspace — D-ATC
//! ([`DatcEncoder`](crate::datc::DatcEncoder)), fixed-threshold ATC
//! ([`AtcEncoder`](crate::atc::AtcEncoder)) and the packet/ADC baseline
//! (`PacketTx` in `datc-uwb`) — implements [`SpikeEncoder`], so links,
//! experiments and examples compose over any of them:
//!
//! ```
//! use datc_core::{DatcConfig, DatcEncoder, EncodedOutput, SpikeEncoder};
//! use datc_signal::Signal;
//!
//! fn air_symbols<E: SpikeEncoder>(enc: &E, s: &Signal) -> u64 {
//!     enc.encode(s).into_events().symbol_count(enc.vth_bits())
//! }
//!
//! let s = Signal::from_fn(2500.0, 1.0, |t| (t * 40.0).sin().abs() * 0.5);
//! assert!(air_symbols(&DatcEncoder::new(DatcConfig::paper()), &s) > 0);
//! ```

use crate::config::DatcConfig;
use crate::dac::Dac;
use crate::dtc::DtcStep;
use crate::event::{Event, EventStream};
use datc_signal::Signal;
use serde::{Deserialize, Serialize};

/// How much per-tick trace data an encoder materialises.
///
/// The full traces of [`DatcOutput`](crate::datc::DatcOutput) (threshold
/// code/voltage per tick, comparator bit per tick) are what the paper's
/// figures plot, but they cost four full-length `Vec`s per run. Hot paths
/// — links, sweeps, benches — opt down to [`TraceLevel::Events`] and
/// allocate nothing per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TraceLevel {
    /// Only the event stream (and scalar duty-cycle counters).
    Events,
    /// Events plus the per-frame threshold decisions (`frame_codes`).
    Frames,
    /// Everything the hardware exposes, per tick — the figure-plotting
    /// level, and the default for backwards compatibility.
    #[default]
    Full,
}

/// What every encoder run produces, regardless of scheme.
pub trait EncodedOutput {
    /// The threshold-crossing events, ready for the IR-UWB modulator.
    fn events(&self) -> &EventStream;

    /// Consumes the output, keeping only the event stream.
    fn into_events(self) -> EventStream;

    /// Fraction of evaluated instants with the comparator high — the
    /// quantity the D-ATC controller regulates, and a cheap activity
    /// measure for every scheme.
    fn duty_cycle(&self) -> f64;
}

/// A spike encoder: rectified sEMG in, events (plus scheme-specific side
/// information) out.
///
/// Implementors must be pure in the signal: encoding the same signal
/// twice yields identical output (internal comparator state is cloned per
/// run, never shared).
pub trait SpikeEncoder {
    /// The scheme-specific rich output.
    type Output: EncodedOutput;

    /// Encodes a rectified, amplified sEMG signal.
    fn encode(&self, rectified: &Signal) -> Self::Output;

    /// Bits of threshold side information carried per event on air
    /// (0 for bare-pulse schemes).
    fn vth_bits(&self) -> u8;

    /// Short scheme name for reports ("d-atc", "atc", "packet").
    fn scheme(&self) -> &'static str;

    /// Symbol slots `output` occupies on air (Sec. III-B accounting:
    /// marker + side-information bits per event). Packetised schemes
    /// override this with their own framing cost.
    fn symbols_on_air(&self, output: &Self::Output) -> u64 {
        output.events().symbol_count(self.vth_bits())
    }

    /// OOK pulses actually radiated for `output` (energy is spent only on
    /// `1` symbols): the event marker plus one pulse per set code bit.
    fn pulses_on_air(&self, output: &Self::Output) -> u64 {
        let bits = self.vth_bits();
        let mask = if bits >= 8 {
            0xFF
        } else {
            (1u16 << bits) as u8 - 1
        };
        output
            .events()
            .iter()
            .map(|e| 1 + u64::from((e.vth_code.unwrap_or(0) & mask).count_ones()))
            .sum()
    }
}

/// Consumer of per-tick results from the streaming D-ATC kernel.
///
/// [`DatcStream::push_chunk`](crate::stream::DatcStream::push_chunk) and
/// [`push_signal`](crate::stream::DatcStream::push_signal) drive one of
/// these instead of returning per-tick structs, so the hot loop does no
/// per-tick allocation and sinks pay only for what they record.
pub trait TickSink {
    /// Called once per system-clock tick, in tick order.
    fn on_tick(&mut self, tick: u64, step: &DtcStep);
}

/// A sink recording only threshold-crossing events.
#[derive(Debug, Clone)]
pub struct EventSink {
    clock_hz: f64,
    tick_period_s: f64,
    events: Vec<Event>,
}

impl EventSink {
    /// Creates a sink for a kernel clocked at `clock_hz`.
    pub fn new(clock_hz: f64) -> Self {
        EventSink {
            clock_hz,
            tick_period_s: 1.0 / clock_hz,
            events: Vec::new(),
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Finishes into an [`EventStream`] over `duration_s` seconds.
    pub fn into_stream(self, duration_s: f64) -> EventStream {
        EventStream::new(
            self.events,
            self.clock_hz,
            duration_s.max(f64::MIN_POSITIVE),
        )
    }
}

impl TickSink for EventSink {
    #[inline]
    fn on_tick(&mut self, tick: u64, step: &DtcStep) {
        if step.event {
            self.events.push(Event {
                tick,
                time_s: tick as f64 * self.tick_period_s,
                vth_code: Some(step.sampled_code),
            });
        }
    }
}

/// A sink that only counts — the cheapest possible consumer, for duty
/// cycle estimation and throughput benches.
///
/// Every field update is a branch-free add of a bool-widened counter, so
/// the compiler fully inlines `on_tick` into the kernel loop and the
/// whole sink lives in four registers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Ticks observed.
    pub ticks: u64,
    /// Ticks with the comparator bit high.
    pub ones: u64,
    /// Events fired.
    pub events: u64,
    /// Frames closed.
    pub frames: u64,
}

impl CountingSink {
    /// Fraction of observed ticks with the comparator bit high.
    pub fn duty_cycle(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.ones as f64 / self.ticks as f64
    }
}

impl TickSink for CountingSink {
    #[inline]
    fn on_tick(&mut self, _tick: u64, step: &DtcStep) {
        self.ticks += 1;
        self.ones += u64::from(step.d_out);
        self.events += u64::from(step.event);
        self.frames += u64::from(step.end_of_frame);
    }
}

/// The sink behind batch encoding: accumulates a
/// [`DatcOutput`](crate::datc::DatcOutput) with trace capture governed by
/// the configuration's [`TraceLevel`].
#[derive(Debug, Clone)]
pub struct DatcOutputBuilder {
    trace: TraceLevel,
    clock_hz: f64,
    tick_period_s: f64,
    vth_lut: Vec<f64>,
    events: Vec<Event>,
    vth_code_trace: Vec<u8>,
    vth_volt_trace: Vec<f64>,
    d_out: Vec<bool>,
    frame_codes: Vec<u8>,
    ticks: u64,
    ones: u64,
}

impl DatcOutputBuilder {
    /// Creates a builder for `config`, pre-sizing trace buffers for
    /// `expected_ticks` when the trace level materialises them.
    ///
    /// # Panics
    ///
    /// Panics when the configuration's DAC is invalid; encoders validate
    /// their configuration before reaching this point.
    pub fn new(config: &DatcConfig, expected_ticks: usize) -> Self {
        let trace = config.trace;
        let (tick_cap, frame_cap) = match trace {
            TraceLevel::Events => (0, 0),
            TraceLevel::Frames => (0, expected_ticks / config.frame_size.len() as usize + 1),
            TraceLevel::Full => (
                expected_ticks,
                expected_ticks / config.frame_size.len() as usize + 1,
            ),
        };
        DatcOutputBuilder {
            trace,
            clock_hz: config.clock_hz,
            tick_period_s: 1.0 / config.clock_hz,
            vth_lut: Dac::new(config.dac_bits, config.vref)
                .expect("validated configuration")
                .voltage_table(),
            events: Vec::new(),
            vth_code_trace: Vec::with_capacity(tick_cap),
            vth_volt_trace: Vec::with_capacity(tick_cap),
            d_out: Vec::with_capacity(tick_cap),
            frame_codes: Vec::with_capacity(frame_cap),
            ticks: 0,
            ones: 0,
        }
    }

    /// Finishes into a [`DatcOutput`](crate::datc::DatcOutput) covering
    /// `duration_s` seconds.
    pub fn finish(self, duration_s: f64) -> crate::datc::DatcOutput {
        crate::datc::DatcOutput {
            events: EventStream::new(
                self.events,
                self.clock_hz,
                duration_s.max(f64::MIN_POSITIVE),
            ),
            vth_code_trace: self.vth_code_trace,
            vth_volt_trace: self.vth_volt_trace,
            d_out: self.d_out,
            frame_codes: self.frame_codes,
            ticks: self.ticks,
            ones: self.ones,
        }
    }
}

impl TickSink for DatcOutputBuilder {
    #[inline]
    fn on_tick(&mut self, tick: u64, step: &DtcStep) {
        self.ticks += 1;
        self.ones += u64::from(step.d_out);
        if step.event {
            self.events.push(Event {
                tick,
                time_s: tick as f64 * self.tick_period_s,
                vth_code: Some(step.sampled_code),
            });
        }
        match self.trace {
            TraceLevel::Events => {}
            TraceLevel::Frames => {
                if step.end_of_frame {
                    self.frame_codes.push(step.set_vth);
                }
            }
            TraceLevel::Full => {
                if step.end_of_frame {
                    self.frame_codes.push(step.set_vth);
                }
                self.vth_code_trace.push(step.set_vth);
                self.vth_volt_trace
                    .push(self.vth_lut[usize::from(step.set_vth)]);
                self.d_out.push(step.d_out);
            }
        }
    }
}

/// A bank of per-channel encoders for multi-channel (AER) systems.
///
/// Encodes N signals with N independent encoder instances; the merged
/// single-link transport lives in `datc-uwb::aer` (see
/// `merge_encoder_bank`).
///
/// # Example
///
/// ```
/// use datc_core::{DatcConfig, DatcEncoder, EncoderBank, SpikeEncoder};
/// use datc_signal::Signal;
///
/// let bank = EncoderBank::replicate(DatcEncoder::new(DatcConfig::paper()), 2);
/// let ch0 = Signal::from_fn(2500.0, 1.0, |t| (t * 40.0).sin().abs() * 0.5);
/// let ch1 = Signal::from_fn(2500.0, 1.0, |t| (t * 25.0).sin().abs() * 0.3);
/// let streams = bank.encode_events(&[ch0, ch1]);
/// assert_eq!(streams.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct EncoderBank<E> {
    encoders: Vec<E>,
}

impl<E: SpikeEncoder> EncoderBank<E> {
    /// Builds a bank from per-channel encoders (possibly with different
    /// configurations per channel).
    ///
    /// # Panics
    ///
    /// Panics on an empty bank.
    pub fn new(encoders: Vec<E>) -> Self {
        assert!(!encoders.is_empty(), "encoder bank needs ≥ 1 channel");
        EncoderBank { encoders }
    }

    /// Builds an `n`-channel bank of clones of `encoder`.
    pub fn replicate(encoder: E, n: usize) -> Self
    where
        E: Clone,
    {
        assert!(n > 0, "encoder bank needs ≥ 1 channel");
        EncoderBank {
            encoders: vec![encoder; n],
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.encoders.len()
    }

    /// The per-channel encoders.
    pub fn encoders(&self) -> &[E] {
        &self.encoders
    }

    /// Encodes one signal per channel, returning the full per-channel
    /// outputs.
    ///
    /// # Panics
    ///
    /// Panics when `signals.len()` differs from the channel count.
    pub fn encode_all(&self, signals: &[Signal]) -> Vec<E::Output> {
        assert_eq!(signals.len(), self.encoders.len(), "one signal per channel");
        self.encoders
            .iter()
            .zip(signals)
            .map(|(e, s)| e.encode(s))
            .collect()
    }

    /// Encodes one signal per channel, keeping only the event streams
    /// (the AER merger's input).
    pub fn encode_events(&self, signals: &[Signal]) -> Vec<EventStream> {
        self.encode_all(signals)
            .into_iter()
            .map(EncodedOutput::into_events)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datc::DatcEncoder;

    fn test_signal(gain: f64) -> Signal {
        Signal::from_fn(2500.0, 2.0, |t| {
            ((t * 97.0).sin() * (t * 7.0).cos()).abs() * gain
        })
    }

    #[test]
    fn trace_level_defaults_to_full() {
        assert_eq!(TraceLevel::default(), TraceLevel::Full);
        assert_eq!(DatcConfig::paper().trace, TraceLevel::Full);
    }

    #[test]
    fn events_level_materialises_no_traces() {
        let cfg = DatcConfig::paper().with_trace_level(TraceLevel::Events);
        let out = DatcEncoder::new(cfg).encode(&test_signal(0.6));
        assert!(!out.events.is_empty());
        assert!(out.vth_code_trace.is_empty());
        assert!(out.vth_volt_trace.is_empty());
        assert!(out.d_out.is_empty());
        assert!(out.frame_codes.is_empty());
        // duty cycle still available from the counters
        assert!(out.duty_cycle() > 0.0);
    }

    #[test]
    fn frames_level_keeps_frame_codes_only() {
        let cfg = DatcConfig::paper().with_trace_level(TraceLevel::Frames);
        let out = DatcEncoder::new(cfg).encode(&test_signal(0.6));
        assert_eq!(out.frame_codes.len(), 40); // 2 s × 2 kHz / 100
        assert!(out.vth_code_trace.is_empty());
        assert!(out.d_out.is_empty());
    }

    #[test]
    fn trace_levels_agree_on_events_and_duty() {
        let s = test_signal(0.5);
        let full = DatcEncoder::new(DatcConfig::paper()).encode(&s);
        let lean =
            DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events)).encode(&s);
        assert_eq!(full.events, lean.events);
        assert!((full.duty_cycle() - lean.duty_cycle()).abs() < 1e-15);
    }

    #[test]
    fn bank_encodes_each_channel_independently() {
        let bank = EncoderBank::replicate(DatcEncoder::new(DatcConfig::paper()), 3);
        let signals = [test_signal(0.2), test_signal(0.5), test_signal(0.9)];
        let outs = bank.encode_all(&signals);
        assert_eq!(outs.len(), 3);
        // each channel matches a standalone encode of its own signal
        for (out, s) in outs.iter().zip(&signals) {
            let solo = DatcEncoder::new(DatcConfig::paper()).encode(s);
            assert_eq!(out.events, solo.events);
        }
    }

    #[test]
    #[should_panic(expected = "one signal per channel")]
    fn bank_rejects_channel_mismatch() {
        let bank = EncoderBank::replicate(DatcEncoder::new(DatcConfig::paper()), 2);
        let _ = bank.encode_all(&[test_signal(0.5)]);
    }

    #[test]
    fn pulses_on_air_follows_code_popcount() {
        let cfg = DatcConfig::paper();
        let enc = DatcEncoder::new(cfg);
        let out = enc.encode(&test_signal(0.7));
        assert!(!out.events.is_empty());
        let expected: u64 = out
            .events
            .iter()
            .map(|e| 1 + u64::from(e.vth_code.unwrap().count_ones()))
            .sum();
        assert_eq!(enc.pulses_on_air(&out), expected);
        // symbol accounting: marker + dac_bits per event
        assert_eq!(
            enc.symbols_on_air(&out),
            out.events.len() as u64 * (1 + u64::from(cfg.dac_bits))
        );
    }

    #[test]
    fn counting_sink_matches_output_counters() {
        use crate::stream::DatcStream;
        let s = test_signal(0.7);
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&s);
        let mut stream = DatcStream::new(DatcConfig::paper()).unwrap();
        let mut count = CountingSink::default();
        stream.push_signal(&s, &mut count);
        assert_eq!(count.events as usize, out.events.len());
        assert_eq!(count.ones, out.ones);
        assert_eq!(count.ticks, out.ticks);
    }
}
