//! The complete D-ATC transmitter pipeline (Fig. 1): comparator + DAC +
//! DTC, producing the event stream (with threshold side information) that
//! the IR-UWB modulator radiates.
//!
//! [`DatcEncoder`] is the batch entry point of the unified
//! [`SpikeEncoder`] API; it is a thin driver over the streaming kernel in
//! [`stream`](crate::stream) — there is exactly one tick loop in this
//! crate.

use crate::comparator::Comparator;
use crate::config::DatcConfig;
use crate::dac::Dac;
use crate::encoder::{DatcOutputBuilder, EncodedOutput, SpikeEncoder};
use crate::error::CoreError;
use crate::event::EventStream;
use crate::stream::DatcStream;
use datc_signal::Signal;

/// Everything the D-ATC encoder produces for one input signal.
///
/// Which trace fields are populated is governed by the configuration's
/// [`TraceLevel`](crate::encoder::TraceLevel): at `Events` only the
/// event stream and the scalar counters are kept, at `Frames` the
/// per-frame codes come back, at `Full` (the default) every per-tick
/// trace the hardware exposes is materialised.
#[derive(Debug, Clone, PartialEq)]
pub struct DatcOutput {
    /// Threshold-crossing events, each tagged with the 4-bit code in force
    /// when it fired (Fig. 2-E: event marker + digitised threshold level).
    pub events: EventStream,
    /// The threshold code at every DTC clock tick (for plotting the
    /// dynamic threshold of Fig. 3-A and for receiver-side evaluation).
    /// Empty below [`TraceLevel::Full`](crate::encoder::TraceLevel).
    pub vth_code_trace: Vec<u8>,
    /// The threshold voltage at every tick (code through the DAC).
    /// Empty below [`TraceLevel::Full`](crate::encoder::TraceLevel).
    pub vth_volt_trace: Vec<f64>,
    /// The synchronised comparator bit at every tick (`D_out`).
    /// Empty below [`TraceLevel::Full`](crate::encoder::TraceLevel).
    pub d_out: Vec<bool>,
    /// The code decided at each frame boundary. Empty at
    /// [`TraceLevel::Events`](crate::encoder::TraceLevel).
    pub frame_codes: Vec<u8>,
    /// Ticks executed — always populated, at every trace level.
    pub ticks: u64,
    /// Ticks with `D_out = 1` — always populated, at every trace level.
    pub ones: u64,
}

impl DatcOutput {
    /// Fraction of ticks with `D_out = 1` (comparator duty cycle) — the
    /// quantity the DTC regulates toward the interval band. Computed from
    /// the scalar counters, so it is exact at every trace level.
    pub fn duty_cycle(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.ones as f64 / self.ticks as f64
    }
}

impl EncodedOutput for DatcOutput {
    fn events(&self) -> &EventStream {
        &self.events
    }

    fn into_events(self) -> EventStream {
        self.events
    }

    fn duty_cycle(&self) -> f64 {
        DatcOutput::duty_cycle(self)
    }
}

/// The D-ATC encoder.
///
/// Drives the cycle-accurate streaming kernel
/// ([`DatcStream`]) at its system clock,
/// re-sampling the input signal (zero-order hold, exact rational step) at
/// each tick exactly as the hardware's comparator + `In_reg` pair does.
///
/// # Example
///
/// ```
/// use datc_core::{DatcConfig, DatcEncoder, SpikeEncoder};
/// use datc_signal::Signal;
///
/// let semg = Signal::from_fn(2500.0, 2.0, |t| ((300.0 * t).sin() * (2.0 * t).sin()).abs());
/// let out = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
/// assert_eq!(out.vth_code_trace.len(), 4000); // 2 s at 2 kHz
/// ```
#[derive(Debug, Clone)]
pub struct DatcEncoder {
    config: DatcConfig,
    comparator: Comparator,
}

impl DatcEncoder {
    /// Creates an encoder with an ideal comparator.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; use
    /// [`DatcEncoder::try_new`] for fallible construction.
    pub fn new(config: DatcConfig) -> Self {
        DatcEncoder::try_new(config).expect("invalid D-ATC configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn try_new(config: DatcConfig) -> Result<Self, CoreError> {
        config.validate()?;
        // Also validate that the DAC can be built.
        let _ = Dac::new(config.dac_bits, config.vref)?;
        Ok(DatcEncoder {
            config,
            comparator: Comparator::ideal(),
        })
    }

    /// Replaces the comparator model (offset / hysteresis / noise
    /// studies).
    pub fn with_comparator(mut self, comparator: Comparator) -> Self {
        self.comparator = comparator;
        self
    }

    /// The encoder configuration.
    pub fn config(&self) -> &DatcConfig {
        &self.config
    }

    /// A fresh streaming kernel with this encoder's configuration and
    /// comparator model — the engine [`encode`](SpikeEncoder::encode)
    /// drives, exposed for real-time consumers.
    pub fn streaming(&self) -> DatcStream {
        DatcStream::new(self.config)
            .expect("validated in constructor")
            .with_comparator(self.comparator.clone())
    }
}

impl SpikeEncoder for DatcEncoder {
    type Output = DatcOutput;

    /// Encodes a rectified, amplified sEMG signal.
    ///
    /// The signal may be at any sample rate; the kernel samples it with a
    /// zero-order hold at each DTC clock tick (the analog comparator sees
    /// a continuous waveform; ZOH at ≥ the signal rate is the faithful
    /// discrete stand-in).
    fn encode(&self, rectified: &Signal) -> DatcOutput {
        let mut stream = self.streaming();
        let expected = (rectified.duration() * self.config.clock_hz) as usize;
        let mut sink = DatcOutputBuilder::new(&self.config, expected);
        stream.push_signal(rectified, &mut sink);
        sink.finish(rectified.duration())
    }

    fn vth_bits(&self) -> u8 {
        self.config.dac_bits
    }

    fn scheme(&self) -> &'static str {
        "d-atc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameSize;
    use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};

    fn test_semg(gain: f64, seed: u64) -> Signal {
        let fs = 2500.0;
        let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
        SemgGenerator::new(SemgModel::modulated_noise(), fs)
            .generate(&force, seed)
            .to_scaled(gain)
            .to_rectified()
    }

    #[test]
    fn threshold_adapts_to_signal_level() {
        let out_hi = DatcEncoder::new(DatcConfig::paper()).encode(&test_semg(0.9, 1));
        let out_lo = DatcEncoder::new(DatcConfig::paper()).encode(&test_semg(0.2, 1));
        let max_hi = *out_hi.vth_code_trace.iter().max().unwrap();
        let max_lo = *out_lo.vth_code_trace.iter().max().unwrap();
        assert!(
            max_hi > max_lo,
            "stronger signal should push the threshold higher ({max_hi} vs {max_lo})"
        );
    }

    #[test]
    fn event_count_is_stable_across_signal_gain_relative_to_atc() {
        // The paper's key robustness claim (Fig. 7): D-ATC's event count
        // varies far less across subject amplitudes than fixed-threshold
        // ATC's. (It is not absolutely constant — the 62.5 mV DAC floor
        // still mutes very quiet signals.)
        use crate::atc::AtcEncoder;
        let gains = [0.2, 0.4, 0.6, 0.9];
        let datc_counts: Vec<f64> = gains
            .iter()
            .map(|&g| {
                DatcEncoder::new(DatcConfig::paper())
                    .encode(&test_semg(g, 7))
                    .events
                    .len() as f64
            })
            .collect();
        let atc_counts: Vec<f64> = gains
            .iter()
            .map(|&g| {
                AtcEncoder::new(0.3)
                    .encode(&test_semg(g, 7))
                    .events
                    .len()
                    .max(1) as f64
            })
            .collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) / v.iter().cloned().fold(f64::MAX, f64::min)
        };
        let datc_spread = spread(&datc_counts);
        let atc_spread = spread(&atc_counts);
        assert!(
            datc_spread < 3.0 && atc_spread > 3.0 * datc_spread,
            "D-ATC spread {datc_spread:.2} (counts {datc_counts:?}) should be far \
             below ATC spread {atc_spread:.2} (counts {atc_counts:?})"
        );
    }

    #[test]
    fn events_carry_threshold_codes() {
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&test_semg(0.8, 3));
        assert!(!out.events.is_empty());
        assert!(out.events.iter().all(|e| e.vth_code.is_some()));
        assert!(out
            .events
            .iter()
            .all(|e| e.vth_code.unwrap() >= 1 && e.vth_code.unwrap() <= 15));
        // 5 symbols per event (Sec. III-B)
        assert_eq!(out.events.symbol_count(4), 5 * out.events.len() as u64);
    }

    #[test]
    fn traces_have_expected_length() {
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&test_semg(0.5, 9));
        assert_eq!(out.vth_code_trace.len(), 40_000); // 20 s × 2 kHz
        assert_eq!(out.d_out.len(), 40_000);
        assert_eq!(out.frame_codes.len(), 400); // 40 000 / 100
        assert_eq!(out.ticks, 40_000);
    }

    #[test]
    fn duty_cycle_is_regulated_into_the_interval_band() {
        // The controller aims the comparator duty cycle at the interval
        // band (3 %–48 % of a frame). For an active signal, the duty cycle
        // should sit well inside it.
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&test_semg(0.8, 11));
        let duty = out.duty_cycle();
        assert!(
            (0.03..0.5).contains(&duty),
            "duty cycle {duty} left the regulated band"
        );
    }

    #[test]
    fn duty_cycle_counters_match_the_trace() {
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&test_semg(0.6, 15));
        let from_trace = out.d_out.iter().filter(|&&b| b).count() as f64 / out.d_out.len() as f64;
        assert!((out.duty_cycle() - from_trace).abs() < 1e-15);
    }

    #[test]
    fn frame_size_trades_reactivity() {
        let semg = test_semg(0.8, 13);
        let fast =
            DatcEncoder::new(DatcConfig::paper().with_frame_size(FrameSize::F100)).encode(&semg);
        let slow =
            DatcEncoder::new(DatcConfig::paper().with_frame_size(FrameSize::F800)).encode(&semg);
        // Count threshold changes: the fast frame must re-decide more often.
        let changes = |codes: &[u8]| codes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes(&fast.frame_codes) > changes(&slow.frame_codes));
    }

    #[test]
    fn zero_signal_produces_no_events() {
        let s = Signal::zeros(5000, 2500.0);
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&s);
        assert!(out.events.is_empty());
        assert!(out.vth_code_trace.iter().all(|&c| c == 1));
    }

    #[test]
    fn deterministic_encoding() {
        let s = test_semg(0.7, 21);
        let a = DatcEncoder::new(DatcConfig::paper()).encode(&s);
        let b = DatcEncoder::new(DatcConfig::paper()).encode(&s);
        assert_eq!(a, b);
    }

    #[test]
    fn try_new_rejects_bad_config() {
        let mut cfg = DatcConfig::paper();
        cfg.dac_bits = 0;
        assert!(DatcEncoder::try_new(cfg).is_err());
    }

    #[test]
    fn scheme_metadata() {
        let enc = DatcEncoder::new(DatcConfig::paper());
        assert_eq!(enc.scheme(), "d-atc");
        assert_eq!(enc.vth_bits(), 4);
    }
}
