//! The analog front-end (Fig. 1, "Amplifier" block): programmable gain,
//! supply-rail saturation and full-wave rectification ahead of the
//! comparator.

use datc_signal::Signal;
use serde::{Deserialize, Serialize};

/// Behavioural front-end model.
///
/// The paper's system-level argument is that a **fixed** threshold demands
/// per-subject gain trimming here, while D-ATC absorbs gain variation
/// digitally. The model exposes the gain explicitly so experiments can
/// sweep it.
///
/// # Example
///
/// ```
/// use datc_core::frontend::AnalogFrontEnd;
/// use datc_signal::Signal;
///
/// let fe = AnalogFrontEnd::unity();
/// let raw = Signal::from_samples(vec![-0.5, 0.25], 1000.0);
/// let out = fe.condition(&raw);
/// assert_eq!(out.samples(), &[0.5, 0.25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalogFrontEnd {
    gain: f64,
    supply_v: f64,
    rectify: bool,
}

impl AnalogFrontEnd {
    /// Unity-gain front-end with a 1.8 V supply (the chip's rail in
    /// Table I) and rectification enabled.
    pub fn unity() -> Self {
        AnalogFrontEnd {
            gain: 1.0,
            supply_v: 1.8,
            rectify: true,
        }
    }

    /// Sets the amplifier gain.
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// Sets the saturation rail (volts).
    pub fn with_supply(mut self, supply_v: f64) -> Self {
        self.supply_v = supply_v;
        self
    }

    /// Enables or disables full-wave rectification.
    pub fn with_rectification(mut self, rectify: bool) -> Self {
        self.rectify = rectify;
        self
    }

    /// The configured gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The configured supply rail in volts.
    pub fn supply_v(&self) -> f64 {
        self.supply_v
    }

    /// Conditions a raw sEMG signal: gain → rectify → saturate.
    pub fn condition(&self, raw: &Signal) -> Signal {
        let amplified = raw.to_scaled(self.gain);
        let rectified = if self.rectify {
            amplified.to_rectified()
        } else {
            amplified
        };
        let lo = if self.rectify { 0.0 } else { -self.supply_v };
        rectified.to_clamped(lo, self.supply_v)
    }
}

impl Default for AnalogFrontEnd {
    fn default() -> Self {
        AnalogFrontEnd::unity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_and_rectification_compose() {
        let fe = AnalogFrontEnd::unity().with_gain(2.0);
        let s = Signal::from_samples(vec![-0.3, 0.4], 100.0);
        assert_eq!(fe.condition(&s).samples(), &[0.6, 0.8]);
    }

    #[test]
    fn saturation_clamps_to_rail() {
        let fe = AnalogFrontEnd::unity().with_gain(10.0);
        let s = Signal::from_samples(vec![1.0], 100.0);
        assert_eq!(fe.condition(&s).samples(), &[1.8]);
    }

    #[test]
    fn bipolar_mode_keeps_sign() {
        let fe = AnalogFrontEnd::unity().with_rectification(false);
        let s = Signal::from_samples(vec![-0.5, 0.5], 100.0);
        assert_eq!(fe.condition(&s).samples(), &[-0.5, 0.5]);
    }

    #[test]
    fn bipolar_saturates_symmetrically() {
        let fe = AnalogFrontEnd::unity()
            .with_rectification(false)
            .with_gain(10.0);
        let s = Signal::from_samples(vec![-1.0, 1.0], 100.0);
        assert_eq!(fe.condition(&s).samples(), &[-1.8, 1.8]);
    }
}
