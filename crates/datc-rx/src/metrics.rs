//! Evaluation: the paper's correlation figure of merit.
//!
//! Fig. 3/5/6/7 score a reconstruction by its Pearson correlation (in %)
//! against the average-rectified-value envelope of the original sEMG.
//! Reconstructions lag the signal by the receiver window, so the
//! evaluation aligns the two sequences (bounded lag search) before
//! correlating — standard practice for windowed force estimates.

use datc_signal::resample::resample_linear;
use datc_signal::stats::{best_alignment, pearson, rmse};
use datc_signal::{Signal, SignalError};

/// The outcome of comparing a reconstruction against a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationReport {
    /// Pearson correlation × 100 (the paper's unit).
    pub percent: f64,
    /// Lag (seconds) applied to maximise correlation; positive means the
    /// reconstruction trails the reference.
    pub lag_s: f64,
    /// Root-mean-square error after normalising both sequences to unit
    /// peak (scale-free shape error).
    pub shape_rmse: f64,
}

/// Mean helper exposed for sibling modules' tests.
pub fn mean_of(xs: &[f64]) -> f64 {
    datc_signal::stats::mean(xs)
}

/// Compares `reconstruction` against the ground-truth `reference`
/// envelope.
///
/// Both signals are brought to the lower of the two sample rates, aligned
/// within `±max_lag_s`, and scored. Correlation is scale-invariant;
/// `shape_rmse` is computed after peak normalisation.
///
/// # Errors
///
/// Returns a [`SignalError`] when the overlapping region is too short to
/// correlate.
///
/// # Example
///
/// ```
/// use datc_rx::metrics::evaluate;
/// use datc_signal::Signal;
///
/// let reference = Signal::from_fn(100.0, 4.0, |t| (t * 1.5).sin().abs());
/// let delayed = Signal::from_fn(100.0, 4.0, |t| ((t - 0.1) * 1.5).sin().abs());
/// let report = evaluate(&delayed, &reference, 0.3)?;
/// assert!(report.percent > 99.0);
/// # Ok::<(), datc_signal::SignalError>(())
/// ```
pub fn evaluate(
    reconstruction: &Signal,
    reference: &Signal,
    max_lag_s: f64,
) -> Result<CorrelationReport, SignalError> {
    let fs = reconstruction.sample_rate().min(reference.sample_rate());
    let recon = resample_linear(reconstruction, fs)?;
    let refer = resample_linear(reference, fs)?;
    let n = recon.len().min(refer.len());
    if n < 2 {
        return Err(SignalError::TooShort {
            required: 2,
            available: n,
        });
    }
    let x = &refer.samples()[..n];
    let y = &recon.samples()[..n];
    let max_lag = ((max_lag_s * fs).round() as usize).min(n / 2);
    // best_alignment's lag is negative when y trails x; report the
    // intuitive sign (positive = reconstruction trails the reference).
    let (lag, r) = best_alignment(x, y, max_lag)?;

    // Overlap at the chosen lag for the shape error.
    let (xs, ys): (&[f64], &[f64]) = if lag >= 0 {
        (&x[lag as usize..], &y[..n - lag as usize])
    } else {
        (&x[..n - (-lag) as usize], &y[(-lag) as usize..])
    };
    let norm = |v: &[f64]| -> Vec<f64> {
        let peak = v.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        if peak == 0.0 {
            v.to_vec()
        } else {
            v.iter().map(|&s| s / peak).collect()
        }
    };
    let shape_rmse = rmse(&norm(xs), &norm(ys))?;

    Ok(CorrelationReport {
        percent: r * 100.0,
        lag_s: -(lag as f64) / fs,
        shape_rmse,
    })
}

/// Convenience: correlation % without alignment (lag 0), for strictly
/// causal comparisons.
///
/// # Errors
///
/// Propagates [`SignalError`] from resampling or a too-short overlap.
pub fn correlation_percent_aligned_at_zero(
    reconstruction: &Signal,
    reference: &Signal,
) -> Result<f64, SignalError> {
    let fs = reconstruction.sample_rate().min(reference.sample_rate());
    let recon = resample_linear(reconstruction, fs)?;
    let refer = resample_linear(reference, fs)?;
    let n = recon.len().min(refer.len());
    Ok(pearson(&refer.samples()[..n], &recon.samples()[..n])? * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_score_100() {
        let s = Signal::from_fn(100.0, 2.0, |t| (3.0 * t).sin().abs());
        let r = evaluate(&s, &s, 0.1).unwrap();
        assert!((r.percent - 100.0).abs() < 1e-9);
        assert_eq!(r.lag_s, 0.0);
        assert!(r.shape_rmse < 1e-12);
    }

    #[test]
    fn alignment_recovers_known_lag() {
        let refer = Signal::from_fn(200.0, 4.0, |t| (2.0 * t).sin().abs());
        let recon = Signal::from_fn(200.0, 4.0, |t| (2.0 * (t - 0.15)).sin().abs());
        let r = evaluate(&recon, &refer, 0.3).unwrap();
        assert!(r.percent > 99.0, "percent {}", r.percent);
        assert!((r.lag_s - 0.15).abs() < 0.03, "lag {}", r.lag_s);
    }

    #[test]
    fn mixed_rates_are_handled() {
        let refer = Signal::from_fn(2500.0, 4.0, |t| (1.5 * t).sin().abs());
        let recon = Signal::from_fn(100.0, 4.0, |t| (1.5 * t).sin().abs());
        let r = evaluate(&recon, &refer, 0.1).unwrap();
        assert!(r.percent > 99.5, "percent {}", r.percent);
    }

    #[test]
    fn anti_correlated_signals_score_negative() {
        let refer = Signal::from_fn(100.0, 2.0, |t| (3.0 * t).sin());
        let recon = Signal::from_fn(100.0, 2.0, |t| -(3.0 * t).sin());
        let r = correlation_percent_aligned_at_zero(&recon, &refer).unwrap();
        assert!(r < -99.0);
    }

    #[test]
    fn too_short_signals_error() {
        let a = Signal::from_samples(vec![1.0, 2.0], 10.0);
        let b = Signal::from_samples(vec![1.0, 2.0], 10.0);
        // resample to min rate keeps 2 samples; evaluation needs ≥ 2 for
        // pearson but lag search shrinks the overlap — expect either a
        // result or a clean error, never a panic.
        let _ = evaluate(&a, &b, 0.0);
    }
}
