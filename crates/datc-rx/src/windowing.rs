//! Event-rate estimation: the receiver's "low-complexity windowing".

use datc_core::event::EventStream;
use datc_signal::Signal;

/// Causal sliding-window event rate in events/second, sampled at
/// `output_fs` Hz.
///
/// At output time `t` the estimate is the number of events inside
/// `(t - window_s, t]` divided by the window length, computed with a
/// two-pointer sweep (O(N + M)).
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::windowing::sliding_rate;
///
/// let ev: Vec<Event> = (0..100)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.01, vth_code: None })
///     .collect();
/// let s = EventStream::new(ev, 100.0, 1.0);
/// let rate = sliding_rate(&s, 0.2, 100.0);
/// // steady 100 ev/s once the window fills
/// assert!((rate.samples()[80] - 100.0).abs() < 11.0);
/// ```
pub fn sliding_rate(events: &EventStream, window_s: f64, output_fs: f64) -> Signal {
    assert!(window_s > 0.0, "window must be positive");
    assert!(output_fs > 0.0, "output rate must be positive");
    let n_out = (events.duration_s() * output_fs).floor().max(0.0) as usize;
    let times: Vec<f64> = events.iter().map(|e| e.time_s).collect();
    let mut out = Vec::with_capacity(n_out);
    let mut lo = 0usize; // first event inside the window
    let mut hi = 0usize; // one past the last event with time <= t
    for k in 0..n_out {
        let t = k as f64 / output_fs;
        while hi < times.len() && times[hi] <= t {
            hi += 1;
        }
        while lo < hi && times[lo] <= t - window_s {
            lo += 1;
        }
        out.push((hi - lo) as f64 / window_s);
    }
    Signal::from_samples(out, output_fs)
}

/// Non-overlapping (tumbling) window counts: `(window_centre_s, count)`
/// pairs — the simplest receiver the original ATC demo used.
///
/// An event timestamped exactly at the end of the observation window
/// (`time_s / window_s == n_windows`, which happens whenever the window
/// length divides the duration) belongs to the last window rather than
/// to a non-existent one past the end; it is clamped in, not dropped.
pub fn tumbling_counts(events: &EventStream, window_s: f64) -> Vec<(f64, usize)> {
    assert!(window_s > 0.0, "window must be positive");
    let n_windows = (events.duration_s() / window_s).ceil() as usize;
    let mut counts = vec![0usize; n_windows];
    for e in events {
        let mut idx = (e.time_s / window_s) as usize;
        if idx == n_windows && n_windows > 0 && e.time_s <= events.duration_s() {
            // exactly at the window edge: the closed end of the last bin
            // (events strictly past the observation window stay dropped)
            idx = n_windows - 1;
        }
        if idx < n_windows {
            counts[idx] += 1;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| ((i as f64 + 0.5) * window_s, c))
        .collect()
}

/// Exponentially weighted event-rate estimate (one-pole smoothing of the
/// inter-event intervals), an alternative receiver with O(1) memory.
pub fn ewma_rate(events: &EventStream, tau_s: f64, output_fs: f64) -> Signal {
    assert!(tau_s > 0.0, "time constant must be positive");
    let n_out = (events.duration_s() * output_fs).floor().max(0.0) as usize;
    let dt = 1.0 / output_fs;
    let alpha = (-dt / tau_s).exp();
    let mut out = Vec::with_capacity(n_out);
    let mut level = 0.0f64;
    let mut next_event = 0usize;
    let times: Vec<f64> = events.iter().map(|e| e.time_s).collect();
    for k in 0..n_out {
        let t = k as f64 / output_fs;
        let mut impulses = 0.0;
        while next_event < times.len() && times[next_event] <= t {
            impulses += 1.0;
            next_event += 1;
        }
        // impulse contributes 1/tau so that DC gain equals the rate
        level = alpha * level + impulses / tau_s;
        out.push(level);
    }
    Signal::from_samples(out, output_fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datc_core::event::Event;

    fn regular_stream(rate_hz: f64, duration_s: f64) -> EventStream {
        let n = (rate_hz * duration_s) as usize;
        let ev: Vec<Event> = (0..n)
            .map(|i| Event {
                tick: i as u64,
                time_s: i as f64 / rate_hz,
                vth_code: None,
            })
            .collect();
        EventStream::new(ev, 1000.0, duration_s)
    }

    #[test]
    fn sliding_rate_recovers_constant_rate() {
        let s = regular_stream(50.0, 2.0);
        let rate = sliding_rate(&s, 0.5, 100.0);
        let tail = &rate.samples()[100..];
        for &r in tail {
            assert!((r - 50.0).abs() <= 2.0 / 0.5, "rate {r}");
        }
    }

    #[test]
    fn sliding_rate_of_empty_stream_is_zero() {
        let s = EventStream::new(vec![], 1000.0, 1.0);
        let rate = sliding_rate(&s, 0.25, 100.0);
        assert!(rate.samples().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn tumbling_counts_partition_all_events() {
        let s = regular_stream(97.0, 2.0);
        let windows = tumbling_counts(&s, 0.13);
        let total: usize = windows.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn tumbling_counts_keep_the_event_at_the_exact_window_edge() {
        // duration 1.0 s, window 0.25 s: an event at exactly t = 1.0
        // indexes to 4 == n_windows and used to be dropped silently.
        let ev = vec![
            Event {
                tick: 0,
                time_s: 0.1,
                vth_code: None,
            },
            Event {
                tick: 999,
                time_s: 1.0,
                vth_code: None,
            },
        ];
        let s = EventStream::new(ev, 1000.0, 1.0);
        let windows = tumbling_counts(&s, 0.25);
        assert_eq!(windows.len(), 4);
        let total: usize = windows.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 2, "edge event must not vanish");
        assert_eq!(windows[3].1, 1, "edge event clamps into the last window");

        // but an event strictly past the observation window stays out:
        // the clamp rescues the boundary, not out-of-window data
        let late = EventStream::new(
            vec![Event {
                tick: 0,
                time_s: 1.49, // idx == n_windows for window 0.5 yet t > duration
                vth_code: None,
            }],
            1000.0,
            1.0,
        );
        let windows = tumbling_counts(&late, 0.5);
        let total: usize = windows.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 0, "past-duration event must not be clamped in");
    }

    #[test]
    fn ewma_rate_converges_to_true_rate() {
        let s = regular_stream(80.0, 4.0);
        let rate = ewma_rate(&s, 0.25, 200.0);
        let tail = crate::metrics::mean_of(&rate.samples()[600..]);
        assert!((tail - 80.0).abs() < 8.0, "ewma tail {tail}");
    }

    #[test]
    fn rate_tracks_a_step_change() {
        // 20 ev/s for 1 s then 100 ev/s for 1 s
        let mut ev = Vec::new();
        let mut tick = 0u64;
        let mut push = |t: f64| {
            ev.push(Event {
                tick,
                time_s: t,
                vth_code: None,
            });
            tick += 1;
        };
        let mut t = 0.0;
        while t < 1.0 {
            push(t);
            t += 1.0 / 20.0;
        }
        while t < 2.0 {
            push(t);
            t += 1.0 / 100.0;
        }
        let s = EventStream::new(ev, 1000.0, 2.0);
        let rate = sliding_rate(&s, 0.2, 100.0);
        assert!(rate.samples()[80] < 40.0);
        assert!(rate.samples()[190] > 80.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let s = regular_stream(10.0, 1.0);
        let _ = sliding_rate(&s, 0.0, 100.0);
    }
}
