//! The composable end-to-end pipeline: **encoder → channel →
//! reconstructor**, built with [`Link::builder`].
//!
//! This is the API the paper's whole system diagram collapses into —
//! sEMG in, force estimate out — over any [`SpikeEncoder`] and any
//! [`Reconstructor`]:
//!
//! ```
//! use datc_core::{DatcConfig, DatcEncoder};
//! use datc_rx::pipeline::Link;
//! use datc_rx::HybridReconstructor;
//! use datc_uwb::channel::SymbolChannel;
//! use datc_signal::Signal;
//!
//! let semg = Signal::from_fn(2500.0, 2.0, |t| ((t * 97.0).sin() * (t * 3.0).cos()).abs());
//! let link = Link::builder()
//!     .encoder(DatcEncoder::new(DatcConfig::paper()))
//!     .channel(SymbolChannel::new(0.05, 0.0))
//!     .reconstructor(HybridReconstructor::paper())
//!     .output_fs(100.0)
//!     .build();
//! let run = link.run(&semg);
//! assert_eq!(run.reconstruction.sample_rate(), 100.0);
//! ```

use crate::metrics::{evaluate, CorrelationReport};
use crate::reconstruct::Reconstructor;
use datc_core::encoder::SpikeEncoder;
use datc_signal::{Signal, SignalError};
use datc_uwb::channel::SymbolChannel;
use datc_uwb::energy::TxEnergyModel;
use datc_uwb::link::{Transmission, UwbTx};

/// Default reconstruction output rate (Hz) — the experiments' 100 Hz.
pub const DEFAULT_OUTPUT_FS: f64 = 100.0;

/// One full pass through a [`Link`].
#[derive(Debug, Clone)]
pub struct LinkRun<O> {
    /// Transmit-side results: encoder output, transport report, symbol
    /// and energy accounting.
    pub transmission: Transmission<O>,
    /// The receiver's force-proportional estimate.
    pub reconstruction: Signal,
}

impl<O> LinkRun<O> {
    /// Scores the reconstruction against a ground-truth envelope
    /// (Pearson correlation with lag search, the paper's figure of
    /// merit).
    ///
    /// # Errors
    ///
    /// Propagates [`SignalError`] when the overlap is too short to
    /// correlate.
    pub fn score(
        &self,
        reference: &Signal,
        max_lag_s: f64,
    ) -> Result<CorrelationReport, SignalError> {
        evaluate(&self.reconstruction, reference, max_lag_s)
    }
}

/// The assembled pipeline. Build with [`Link::builder`]; run with
/// [`Link::run`].
#[derive(Debug, Clone)]
pub struct Link<E, R> {
    tx: UwbTx<E>,
    reconstructor: R,
    output_fs: f64,
}

impl Link<(), ()> {
    /// Starts a pipeline builder.
    pub fn builder() -> LinkBuilder<(), ()> {
        LinkBuilder {
            encoder: (),
            reconstructor: (),
            channel: SymbolChannel::ideal(),
            energy_model: None,
            seed: 0,
            output_fs: DEFAULT_OUTPUT_FS,
        }
    }
}

impl<E: SpikeEncoder, R: Reconstructor> Link<E, R> {
    /// The transmit chain (encoder + channel).
    pub fn tx(&self) -> &UwbTx<E> {
        &self.tx
    }

    /// The receiver-side reconstructor.
    pub fn reconstructor(&self) -> &R {
        &self.reconstructor
    }

    /// Runs the full pipeline on one rectified sEMG recording.
    pub fn run(&self, rectified: &Signal) -> LinkRun<E::Output> {
        self.run_transmission(self.tx.transmit(rectified))
    }

    /// Runs the transport + receiver half on an already-encoded output —
    /// channel sweeps over one recording encode once and reuse it.
    pub fn run_encoded(&self, encoded: E::Output) -> LinkRun<E::Output> {
        self.run_transmission(self.tx.transmit_encoded(encoded))
    }

    /// Runs the transport + receiver half over a batch of already-encoded
    /// outputs, one [`LinkRun`] per element, in order.
    ///
    /// This is the fleet entry point: `datc-engine`'s `FleetRunner`
    /// produces per-channel `DatcOutput`s that feed straight through
    /// here, so a whole electrode fleet reuses one fast multi-channel
    /// encode instead of re-encoding per link run.
    pub fn run_encoded_batch(
        &self,
        encoded: impl IntoIterator<Item = E::Output>,
    ) -> Vec<LinkRun<E::Output>> {
        encoded.into_iter().map(|o| self.run_encoded(o)).collect()
    }

    fn run_transmission(&self, transmission: Transmission<E::Output>) -> LinkRun<E::Output> {
        let reconstruction = self
            .reconstructor
            .reconstruct(&transmission.transport.received, self.output_fs);
        LinkRun {
            transmission,
            reconstruction,
        }
    }

    /// Runs the pipeline and scores it in one call: `(run, correlation %)`
    /// with the experiments' convention of 0 % for unscorable runs.
    pub fn run_scored(
        &self,
        rectified: &Signal,
        reference: &Signal,
        max_lag_s: f64,
    ) -> (LinkRun<E::Output>, f64) {
        let run = self.run(rectified);
        let pct = run
            .score(reference, max_lag_s)
            .map(|r| r.percent)
            .unwrap_or(0.0);
        (run, pct)
    }
}

/// Builder for [`Link`]. Typestate on encoder and reconstructor: `build`
/// only exists once both are set.
#[derive(Debug, Clone)]
pub struct LinkBuilder<E, R> {
    encoder: E,
    reconstructor: R,
    channel: SymbolChannel,
    energy_model: Option<TxEnergyModel>,
    seed: u64,
    output_fs: f64,
}

impl<E, R> LinkBuilder<E, R> {
    /// Sets the spike encoder (D-ATC, ATC, packet baseline, …).
    pub fn encoder<E2: SpikeEncoder>(self, encoder: E2) -> LinkBuilder<E2, R> {
        LinkBuilder {
            encoder,
            reconstructor: self.reconstructor,
            channel: self.channel,
            energy_model: self.energy_model,
            seed: self.seed,
            output_fs: self.output_fs,
        }
    }

    /// Sets the receiver-side reconstructor.
    pub fn reconstructor<R2: Reconstructor>(self, reconstructor: R2) -> LinkBuilder<E, R2> {
        LinkBuilder {
            encoder: self.encoder,
            reconstructor,
            channel: self.channel,
            energy_model: self.energy_model,
            seed: self.seed,
            output_fs: self.output_fs,
        }
    }

    /// Sets the symbol-level channel model (default: ideal).
    pub fn channel(mut self, channel: SymbolChannel) -> Self {
        self.channel = channel;
        self
    }

    /// Attaches a transmitter energy model (default: none).
    pub fn energy_model(mut self, model: TxEnergyModel) -> Self {
        self.energy_model = Some(model);
        self
    }

    /// Sets the channel-noise seed (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the reconstruction output rate in Hz (default: 100).
    ///
    /// # Panics
    ///
    /// Panics when `output_fs` is not positive.
    pub fn output_fs(mut self, output_fs: f64) -> Self {
        assert!(
            output_fs.is_finite() && output_fs > 0.0,
            "output rate must be positive"
        );
        self.output_fs = output_fs;
        self
    }
}

impl<E: SpikeEncoder, R: Reconstructor> LinkBuilder<E, R> {
    /// Assembles the pipeline.
    pub fn build(self) -> Link<E, R> {
        let mut tx = UwbTx::new(self.encoder)
            .channel(self.channel)
            .seed(self.seed);
        if let Some(m) = self.energy_model {
            tx = tx.energy_model(m);
        }
        Link {
            tx,
            reconstructor: self.reconstructor,
            output_fs: self.output_fs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::{HybridReconstructor, RateReconstructor};
    use datc_core::atc::AtcEncoder;
    use datc_core::{DatcConfig, DatcEncoder, TraceLevel};
    use datc_signal::envelope::arv_envelope;
    use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};

    fn test_case(gain: f64) -> (Signal, Signal) {
        let fs = 2500.0;
        let force = ForceProfile::mvc_protocol().samples(fs, 10.0);
        let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
            .generate(&force, 17)
            .to_scaled(gain)
            .to_rectified();
        let arv = arv_envelope(&semg, 0.25);
        (semg, arv)
    }

    #[test]
    fn datc_link_recovers_force_over_ideal_channel() {
        let (semg, arv) = test_case(0.5);
        let link = Link::builder()
            .encoder(DatcEncoder::new(DatcConfig::paper()))
            .reconstructor(HybridReconstructor::paper())
            .build();
        let (run, pct) = link.run_scored(&semg, &arv, 0.3);
        assert!(pct > 85.0, "correlation {pct:.1}");
        assert_eq!(run.transmission.transport.dropped, 0);
    }

    #[test]
    fn atc_link_composes_with_the_same_builder() {
        let (semg, arv) = test_case(0.8);
        let link = Link::builder()
            .encoder(AtcEncoder::new(0.3))
            .reconstructor(RateReconstructor::default())
            .build();
        let (run, pct) = link.run_scored(&semg, &arv, 0.3);
        assert!(pct > 70.0, "correlation {pct:.1}");
        assert!(run.transmission.symbols_on_air == run.transmission.encoded.events.len() as u64);
    }

    #[test]
    fn lossy_channel_degrades_not_destroys() {
        let (semg, arv) = test_case(0.5);
        let enc = DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events));
        let clean = Link::builder()
            .encoder(enc.clone())
            .reconstructor(HybridReconstructor::paper())
            .build();
        let lossy = Link::builder()
            .encoder(enc)
            .channel(SymbolChannel::new(0.2, 0.0))
            .seed(5)
            .reconstructor(HybridReconstructor::paper())
            .build();
        let (_, clean_pct) = clean.run_scored(&semg, &arv, 0.3);
        let (lossy_run, lossy_pct) = lossy.run_scored(&semg, &arv, 0.3);
        assert!(lossy_run.transmission.transport.dropped > 0);
        assert!(
            lossy_pct > clean_pct - 10.0,
            "{lossy_pct:.1} vs {clean_pct:.1}"
        );
    }

    #[test]
    fn energy_model_flows_through() {
        let (semg, _) = test_case(0.5);
        let link = Link::builder()
            .encoder(DatcEncoder::new(DatcConfig::paper()))
            .energy_model(TxEnergyModel::paper_class())
            .reconstructor(HybridReconstructor::paper())
            .build();
        let run = link.run(&semg);
        let e = run.transmission.energy.expect("model attached");
        assert!(e.average_power_w > 0.0 && e.average_power_w < 1e-6);
    }

    #[test]
    fn output_fs_is_respected() {
        let (semg, _) = test_case(0.5);
        let link = Link::builder()
            .encoder(DatcEncoder::new(DatcConfig::paper()))
            .reconstructor(HybridReconstructor::paper())
            .output_fs(50.0)
            .build();
        let run = link.run(&semg);
        assert_eq!(run.reconstruction.sample_rate(), 50.0);
        assert_eq!(run.reconstruction.len(), 500); // 10 s × 50 Hz
    }
}
