//! Streaming (online) counterparts of the batch receivers.
//!
//! The batch reconstructors in [`crate::reconstruct`] and the rate
//! estimators in [`crate::windowing`] need the whole [`EventStream`]
//! before they produce a single sample. A telemetry receiver decoding a
//! live wire cannot wait 20 seconds: it gets events one at a time and
//! must emit force samples with bounded latency. This module provides
//! that: an [`OnlineReconstructor`] trait plus streaming versions of the
//! sliding-window rate estimator and the EWMA estimator, **bit-exact**
//! with their batch counterparts when fed the same events in the same
//! order.
//!
//! ## The watermark contract
//!
//! Output samples live on the grid `t_k = k / output_fs`. Sample `k` can
//! only be emitted once the receiver knows no future event will carry a
//! timestamp `<= t_k`; events alone cannot prove that (silence is
//! ambiguous), so progress is driven by [`advance_to`]: the caller
//! declares a *watermark* — a lower bound on every future event time —
//! and all samples with `t_k` strictly below it are emitted. A decoder
//! naturally advances the watermark to the timestamp of each decoded
//! event (events arrive in time order), so emission lags the newest
//! event by less than one output period plus the inter-event gap.
//!
//! [`advance_to`]: OnlineReconstructor::advance_to
//!
//! ## Equivalence
//!
//! On a lossless, in-order feed closed with
//! [`finish`](OnlineReconstructor::finish), the emitted samples are
//! bit-identical to [`sliding_rate`](crate::windowing::sliding_rate) /
//! [`ewma_rate`](crate::windowing::ewma_rate) over the same stream: the
//! implementations perform the same comparisons and the same floating
//! point operations in the same order (unit-tested here, property-tested
//! at the workspace level).

use crate::reconstruct::{RateReconstructor, ThresholdTrackReconstructor};
use datc_core::dac::Dac;
use datc_core::event::EventStream;
use datc_signal::filter::{Filter, MovingAverage};
use std::collections::VecDeque;

/// A force reconstructor that accepts events incrementally and emits
/// output samples as soon as they are determined.
///
/// Lifecycle: [`push_event`](OnlineReconstructor::push_event) /
/// [`advance_to`](OnlineReconstructor::advance_to) interleaved freely,
/// then one [`finish`](OnlineReconstructor::finish); emitted samples are
/// collected with [`drain_into`](OnlineReconstructor::drain_into) at any
/// point.
///
/// # Example
///
/// ```
/// use datc_rx::online::{OnlineRateReconstructor, OnlineReconstructor};
///
/// let mut rx = OnlineRateReconstructor::new(0.25, 100.0);
/// for k in 0..50 {
///     let t = k as f64 * 0.02; // a steady 50 ev/s
///     rx.push_event(t);
///     rx.advance_to(t);
/// }
/// rx.finish(1.0);
/// let mut force = Vec::new();
/// rx.drain_into(&mut force);
/// assert_eq!(force.len(), 100); // 1 s at 100 Hz
/// assert!((force[99] - 48.0).abs() < 8.0);
/// ```
pub trait OnlineReconstructor {
    /// The output sample rate (Hz) this reconstructor emits at.
    fn output_fs(&self) -> f64;

    /// Feeds one event timestamp (seconds). Feed order defines the
    /// estimate, exactly as element order does for the batch versions.
    fn push_event(&mut self, time_s: f64);

    /// Feeds one event with its D-ATC threshold code. Estimators that
    /// only use event timing (rate, EWMA) ignore the code — the default
    /// forwards to [`push_event`](OnlineReconstructor::push_event);
    /// code-aware estimators (threshold-track, hybrid) override it.
    fn push_coded(&mut self, time_s: f64, vth_code: Option<u8>) {
        let _ = vth_code;
        self.push_event(time_s);
    }

    /// Declares that every future event will have `time > watermark_s`,
    /// releasing all samples on the output grid strictly below the
    /// watermark.
    fn advance_to(&mut self, watermark_s: f64);

    /// Closes the observation window at `duration_s` and emits every
    /// remaining sample (the batch versions emit
    /// `floor(duration_s * output_fs)` samples in total).
    fn finish(&mut self, duration_s: f64);

    /// Moves all samples emitted so far into `out` (appending), clearing
    /// the internal buffer.
    fn drain_into(&mut self, out: &mut Vec<f64>);

    /// Total samples emitted over the reconstructor's lifetime.
    fn emitted(&self) -> usize;

    /// Convenience: runs a whole [`EventStream`] through the streaming
    /// path and returns the full trace — by construction identical to
    /// the batch reconstruction of the same stream.
    fn run_batch(&mut self, events: &EventStream) -> Vec<f64> {
        for e in events {
            self.push_coded(e.time_s, e.vth_code);
        }
        self.finish(events.duration_s());
        let mut out = Vec::with_capacity(self.emitted());
        self.drain_into(&mut out);
        out
    }
}

/// Shared output-grid bookkeeping: next sample index, the hard cap set
/// once the observation window closes, and the emission buffer.
#[derive(Debug, Clone)]
struct OutputClock {
    fs: f64,
    next_k: usize,
    /// `floor(duration * fs)` once known; `usize::MAX` while streaming.
    limit: usize,
    emitted: Vec<f64>,
    total: usize,
}

impl OutputClock {
    fn new(fs: f64) -> Self {
        assert!(fs > 0.0, "output rate must be positive");
        OutputClock {
            fs,
            next_k: 0,
            limit: usize::MAX,
            emitted: Vec::new(),
            total: 0,
        }
    }

    /// The timestamp of the next undetermined sample, or `None` past the
    /// duration cap.
    fn next_t(&self) -> Option<f64> {
        (self.next_k < self.limit).then(|| self.next_k as f64 / self.fs)
    }

    fn emit(&mut self, v: f64) {
        self.emitted.push(v);
        self.next_k += 1;
        self.total += 1;
    }

    fn close(&mut self, duration_s: f64) {
        let n_out = (duration_s * self.fs).floor().max(0.0) as usize;
        self.limit = self.limit.min(n_out);
    }

    /// `true` once every sample this clock will ever emit is out —
    /// queued events can no longer influence anything.
    fn exhausted(&self) -> bool {
        self.next_k >= self.limit
    }
}

/// Streaming sliding-window event rate — the online
/// [`RateReconstructor`] / [`sliding_rate`](crate::windowing::sliding_rate).
///
/// Keeps the events of the current window in a deque (`O(window ·
/// rate)` memory); every sample costs amortised `O(1)`.
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::online::{OnlineRateReconstructor, OnlineReconstructor};
/// use datc_rx::windowing::sliding_rate;
///
/// let ev: Vec<Event> = (0..40)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.025, vth_code: None })
///     .collect();
/// let stream = EventStream::new(ev, 1000.0, 1.0);
/// let batch = sliding_rate(&stream, 0.25, 100.0);
/// let online = OnlineRateReconstructor::new(0.25, 100.0).run_batch(&stream);
/// assert_eq!(online, batch.samples()); // bit-exact
/// ```
#[derive(Debug, Clone)]
pub struct OnlineRateReconstructor {
    window_s: f64,
    clock: OutputClock,
    /// Events pushed but not yet at/inside any emitted window.
    incoming: VecDeque<f64>,
    /// Events inside the current window (`(t - window, t]`).
    in_window: VecDeque<f64>,
}

impl OnlineRateReconstructor {
    /// Creates a streaming rate estimator over `window_s`-second windows,
    /// emitting at `output_fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics when the window or the output rate is not positive.
    pub fn new(window_s: f64, output_fs: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        OnlineRateReconstructor {
            window_s,
            clock: OutputClock::new(output_fs),
            incoming: VecDeque::new(),
            in_window: VecDeque::new(),
        }
    }

    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front (e.g. from a session header), so a watermark running past
    /// the observation window cannot overshoot the batch trace.
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.cap_duration(duration_s);
        self
    }

    /// In-place form of
    /// [`with_duration`](OnlineRateReconstructor::with_duration).
    pub fn cap_duration(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
    }

    /// The sliding-window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Emits every sample with `t_k` strictly below `up_to`, or all
    /// remaining samples when `up_to` is `None`.
    fn run(&mut self, up_to: Option<f64>) {
        while let Some(t) = self.clock.next_t() {
            if let Some(limit) = up_to {
                if t >= limit {
                    break;
                }
            }
            // Same comparisons as the batch two-pointer sweep.
            while let Some(&front) = self.incoming.front() {
                if front <= t {
                    self.in_window.push_back(front);
                    self.incoming.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&front) = self.in_window.front() {
                if front <= t - self.window_s {
                    self.in_window.pop_front();
                } else {
                    break;
                }
            }
            self.clock.emit(self.in_window.len() as f64 / self.window_s);
        }
        // Past the duration cap no event can reach an output sample;
        // dropping them keeps a capped reconstructor fed by a
        // misbehaving sender in bounded memory.
        if self.clock.exhausted() {
            self.incoming.clear();
            self.in_window.clear();
        }
    }
}

impl From<&RateReconstructor> for OnlineRateReconstructor {
    /// Builds the streaming counterpart of a batch [`RateReconstructor`]
    /// at 100 Hz output (the experiments' default grid).
    fn from(batch: &RateReconstructor) -> Self {
        OnlineRateReconstructor::new(batch.window_s(), 100.0)
    }
}

impl OnlineReconstructor for OnlineRateReconstructor {
    fn output_fs(&self) -> f64 {
        self.clock.fs
    }

    fn push_event(&mut self, time_s: f64) {
        self.incoming.push_back(time_s);
    }

    fn advance_to(&mut self, watermark_s: f64) {
        self.run(Some(watermark_s));
    }

    fn finish(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
        self.run(None);
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        out.append(&mut self.clock.emitted);
    }

    fn emitted(&self) -> usize {
        self.clock.total
    }
}

/// Streaming exponentially-weighted event-rate estimate — the online
/// [`ewma_rate`](crate::windowing::ewma_rate). `O(1)` state beyond the
/// not-yet-absorbed event queue.
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::online::{OnlineEwmaReconstructor, OnlineReconstructor};
/// use datc_rx::windowing::ewma_rate;
///
/// let ev: Vec<Event> = (0..80)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.0125, vth_code: None })
///     .collect();
/// let stream = EventStream::new(ev, 1000.0, 1.0);
/// let batch = ewma_rate(&stream, 0.2, 200.0);
/// let online = OnlineEwmaReconstructor::new(0.2, 200.0).run_batch(&stream);
/// assert_eq!(online, batch.samples()); // bit-exact
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEwmaReconstructor {
    tau_s: f64,
    alpha: f64,
    level: f64,
    clock: OutputClock,
    incoming: VecDeque<f64>,
}

impl OnlineEwmaReconstructor {
    /// Creates a streaming EWMA estimator with time constant `tau_s`,
    /// emitting at `output_fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics when the time constant or the output rate is not positive.
    pub fn new(tau_s: f64, output_fs: f64) -> Self {
        assert!(tau_s > 0.0, "time constant must be positive");
        let dt = 1.0 / output_fs;
        OnlineEwmaReconstructor {
            tau_s,
            alpha: (-dt / tau_s).exp(),
            level: 0.0,
            clock: OutputClock::new(output_fs),
            incoming: VecDeque::new(),
        }
    }

    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front — see
    /// [`OnlineRateReconstructor::with_duration`].
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.cap_duration(duration_s);
        self
    }

    /// In-place form of
    /// [`with_duration`](OnlineEwmaReconstructor::with_duration).
    pub fn cap_duration(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
    }

    /// The smoothing time constant in seconds.
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }

    fn run(&mut self, up_to: Option<f64>) {
        while let Some(t) = self.clock.next_t() {
            if let Some(limit) = up_to {
                if t >= limit {
                    break;
                }
            }
            // Identical accumulation to the batch loop: impulses counted
            // by repeated f64 increments, then one level update.
            let mut impulses = 0.0;
            while let Some(&front) = self.incoming.front() {
                if front <= t {
                    impulses += 1.0;
                    self.incoming.pop_front();
                } else {
                    break;
                }
            }
            self.level = self.alpha * self.level + impulses / self.tau_s;
            self.clock.emit(self.level);
        }
        // See OnlineRateReconstructor::run: a capped clock absorbs no
        // further events, so holding them would leak.
        if self.clock.exhausted() {
            self.incoming.clear();
        }
    }
}

impl OnlineReconstructor for OnlineEwmaReconstructor {
    fn output_fs(&self) -> f64 {
        self.clock.fs
    }

    fn push_event(&mut self, time_s: f64) {
        self.incoming.push_back(time_s);
    }

    fn advance_to(&mut self, watermark_s: f64) {
        self.run(Some(watermark_s));
    }

    fn finish(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
        self.run(None);
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        out.append(&mut self.clock.emitted);
    }

    fn emitted(&self) -> usize {
        self.clock.total
    }
}

/// Streaming zero-order hold of the received D-ATC threshold codes —
/// the online [`ThresholdTrackReconstructor`].
///
/// Per-channel state is one held DAC voltage plus the moving-average
/// smoother (`O(window · output_fs)` memory); every sample costs
/// amortised `O(1)`. Feed events with
/// [`push_coded`](OnlineReconstructor::push_coded) so the threshold
/// codes reach the DAC; events without a code (plain ATC spikes) leave
/// the held voltage unchanged, exactly like the batch code track.
///
/// ## Loss recovery: hold-last-code
///
/// A declared gap (dropped datagram, reorder-window overflow) simply
/// means no code updates arrive for its span, so the reconstructor
/// **holds the last decoded code** until the next surviving event — the
/// same zero-order-hold rule it applies between events on a clean feed.
/// The paper's own robustness argument ("artifacts effect is similar to
/// pulse missing") is what makes this sound: the DTC re-transmits its
/// absolute code with *every* event, so the track re-locks on the first
/// event after the hole and the error never accumulates.
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::online::{OnlineReconstructor, OnlineThresholdTrackReconstructor};
/// use datc_rx::reconstruct::{Reconstructor, ThresholdTrackReconstructor};
///
/// let ev: Vec<Event> = (0..60)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.03, vth_code: Some((i % 16) as u8) })
///     .collect();
/// let stream = EventStream::new(ev, 1000.0, 2.0);
/// let batch = ThresholdTrackReconstructor::paper().reconstruct(&stream, 100.0);
/// let online = OnlineThresholdTrackReconstructor::paper(100.0).run_batch(&stream);
/// assert_eq!(online, batch.samples()); // bit-exact
/// ```
#[derive(Debug, Clone)]
pub struct OnlineThresholdTrackReconstructor {
    dac: Dac,
    clock: OutputClock,
    /// Events (time, code) pushed but not yet absorbed by a sample.
    incoming: VecDeque<(f64, Option<u8>)>,
    /// The held DAC voltage (0 before the first coded event).
    current: f64,
    ma: MovingAverage,
}

impl OnlineThresholdTrackReconstructor {
    /// Creates a streaming threshold tracker decoding codes through
    /// `dac`, smoothing over `smooth_window_s` seconds, emitting at
    /// `output_fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics when the smoothing window or the output rate is not
    /// positive.
    pub fn new(dac: Dac, smooth_window_s: f64, output_fs: f64) -> Self {
        assert!(smooth_window_s > 0.0, "window must be positive");
        let clock = OutputClock::new(output_fs);
        // Same rounding as the batch reconstructor builds its
        // MovingAverage with — part of the bit-exactness contract.
        let n_win = ((smooth_window_s * output_fs).round() as usize).max(1);
        OnlineThresholdTrackReconstructor {
            dac,
            clock,
            incoming: VecDeque::new(),
            current: 0.0,
            ma: MovingAverage::new(n_win),
        }
    }

    /// The paper's receiver: 4-bit 1 V DAC, 750 ms smoothing.
    pub fn paper(output_fs: f64) -> Self {
        OnlineThresholdTrackReconstructor::new(Dac::paper(), 0.75, output_fs)
    }

    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front — see [`OnlineRateReconstructor::with_duration`].
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.cap_duration(duration_s);
        self
    }

    /// In-place form of
    /// [`with_duration`](OnlineThresholdTrackReconstructor::with_duration).
    pub fn cap_duration(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
    }

    /// The DAC decoding the received codes.
    pub fn dac(&self) -> &Dac {
        &self.dac
    }

    fn run(&mut self, up_to: Option<f64>) {
        while let Some(t) = self.clock.next_t() {
            if let Some(limit) = up_to {
                if t >= limit {
                    break;
                }
            }
            // Identical update rule to the batch code track: absorb
            // every event at or before t, coded ones move the hold.
            while let Some(&(front, code)) = self.incoming.front() {
                if front <= t {
                    if let Some(code) = code {
                        self.current = self.dac.voltage(u16::from(code)).unwrap_or(self.current);
                    }
                    self.incoming.pop_front();
                } else {
                    break;
                }
            }
            let smoothed = self.ma.process(self.current);
            self.clock.emit(smoothed);
        }
        // See OnlineRateReconstructor::run: a capped clock absorbs no
        // further events, so holding them would leak.
        if self.clock.exhausted() {
            self.incoming.clear();
        }
    }
}

impl From<&ThresholdTrackReconstructor> for OnlineThresholdTrackReconstructor {
    /// Builds the streaming counterpart of a batch threshold tracker at
    /// 100 Hz output (the experiments' default grid).
    fn from(batch: &ThresholdTrackReconstructor) -> Self {
        OnlineThresholdTrackReconstructor::new(batch.dac().clone(), batch.smooth_window_s(), 100.0)
    }
}

impl OnlineReconstructor for OnlineThresholdTrackReconstructor {
    fn output_fs(&self) -> f64 {
        self.clock.fs
    }

    fn push_event(&mut self, time_s: f64) {
        self.push_coded(time_s, None);
    }

    fn push_coded(&mut self, time_s: f64, vth_code: Option<u8>) {
        self.incoming.push_back((time_s, vth_code));
    }

    fn advance_to(&mut self, watermark_s: f64) {
        self.run(Some(watermark_s));
    }

    fn finish(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
        self.run(None);
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        out.append(&mut self.clock.emitted);
    }

    fn emitted(&self) -> usize {
        self.clock.total
    }
}

/// Streaming threshold track refined by the event rate — the online
/// [`HybridReconstructor`](crate::reconstruct::HybridReconstructor).
///
/// Runs an [`OnlineThresholdTrackReconstructor`] and an
/// [`OnlineRateReconstructor`] in lockstep and combines their samples
/// `est = (vth + α·lsb·(rate/rate₀ − ½)).max(0)`.
///
/// ## The normalisation rate `rate₀`
///
/// The batch hybrid normalises by the stream's *mean* event rate, which
/// a streaming receiver only knows once the session closes. Three
/// modes:
///
/// * **pinned** ([`with_rate0`](OnlineHybridReconstructor::with_rate0)):
///   the caller supplies `rate₀` (from calibration, the session header,
///   or a previous session) and samples stream out with bounded latency;
/// * **auto-calibrated**
///   ([`with_auto_rate0`](OnlineHybridReconstructor::with_auto_rate0)):
///   `rate₀` is measured from the first `calib_s` seconds of the live
///   session itself and pinned once the watermark passes the
///   calibration window — emission lags by at most `calib_s`, then
///   streams with bounded latency. On a non-stationary workload this
///   tracks the session's own operating point where a rate pinned from
///   a *different* workload would bias every sample; a session that
///   ends inside the calibration window falls back to the deferred
///   exact mean;
/// * **deferred** (default): combined samples are withheld until
///   [`finish`](OnlineReconstructor::finish), where `rate₀` is computed
///   from the exact event count and duration — **bit-identical** to the
///   batch hybrid over the same feed, at the price of emission latency
///   (the two sub-estimators still run incrementally, so the deferred
///   state stays `O(n_samples)`, not `O(n_events)`).
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::online::{OnlineHybridReconstructor, OnlineReconstructor};
/// use datc_rx::reconstruct::{HybridReconstructor, Reconstructor};
///
/// let ev: Vec<Event> = (0..90)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.02, vth_code: Some((i % 16) as u8) })
///     .collect();
/// let stream = EventStream::new(ev, 1000.0, 2.0);
/// let batch = HybridReconstructor::paper().reconstruct(&stream, 100.0);
/// let online = OnlineHybridReconstructor::paper(100.0).run_batch(&stream);
/// assert_eq!(online, batch.samples()); // bit-exact (deferred rate0)
/// ```
#[derive(Debug, Clone)]
pub struct OnlineHybridReconstructor {
    track: OnlineThresholdTrackReconstructor,
    rate: OnlineRateReconstructor,
    alpha: f64,
    lsb: f64,
    rate0: Option<f64>,
    /// Auto-calibration window (seconds); `rate₀` pins itself from the
    /// events of the first `calib_s` seconds once the watermark passes.
    auto_calib_s: Option<f64>,
    /// Events with `time ≤ auto_calib_s` seen so far.
    calib_events: u64,
    events_seen: u64,
    /// Sub-estimator outputs staged until they can be combined.
    vth_stage: VecDeque<f64>,
    rate_stage: VecDeque<f64>,
    /// Reused drain buffer (stage() runs once per watermark advance).
    stage_scratch: Vec<f64>,
    emitted: Vec<f64>,
    total: usize,
}

impl OnlineHybridReconstructor {
    /// Creates a streaming hybrid: threshold track through `dac`
    /// smoothed over `smooth_window_s`, rate over `rate_window_s`,
    /// refinement weight `alpha` (DAC-LSB units), output at `output_fs`.
    ///
    /// # Panics
    ///
    /// Panics when a window or the output rate is not positive.
    pub fn new(
        dac: Dac,
        smooth_window_s: f64,
        rate_window_s: f64,
        alpha: f64,
        output_fs: f64,
    ) -> Self {
        let lsb = dac.lsb();
        OnlineHybridReconstructor {
            track: OnlineThresholdTrackReconstructor::new(dac, smooth_window_s, output_fs),
            rate: OnlineRateReconstructor::new(rate_window_s, output_fs),
            alpha,
            lsb,
            rate0: None,
            auto_calib_s: None,
            calib_events: 0,
            events_seen: 0,
            vth_stage: VecDeque::new(),
            rate_stage: VecDeque::new(),
            stage_scratch: Vec::new(),
            emitted: Vec::new(),
            total: 0,
        }
    }

    /// The experiments' default: paper DAC, 750 ms windows, α = 1.
    pub fn paper(output_fs: f64) -> Self {
        OnlineHybridReconstructor::new(Dac::paper(), 0.75, 0.75, 1.0, output_fs)
    }

    /// Pins the normalisation rate (events/s), enabling bounded-latency
    /// streaming emission.
    ///
    /// # Panics
    ///
    /// Panics when `rate0_hz` is not positive.
    pub fn with_rate0(mut self, rate0_hz: f64) -> Self {
        assert!(rate0_hz > 0.0, "normalisation rate must be positive");
        self.rate0 = Some(rate0_hz);
        self
    }

    /// Auto-calibrates the normalisation rate from the first `calib_s`
    /// seconds of the session: once the watermark passes `calib_s`,
    /// `rate₀` is pinned to the event rate observed over that window
    /// and emission streams with bounded latency from then on. A
    /// session that closes before the window fills falls back to the
    /// deferred exact mean.
    ///
    /// # Panics
    ///
    /// Panics when `calib_s` is not positive.
    pub fn with_auto_rate0(mut self, calib_s: f64) -> Self {
        assert!(
            calib_s > 0.0 && calib_s.is_finite(),
            "calibration window must be positive and finite"
        );
        self.auto_calib_s = Some(calib_s);
        self
    }

    /// The pinned normalisation rate, once known (immediately for
    /// [`with_rate0`](OnlineHybridReconstructor::with_rate0), after the
    /// calibration window for
    /// [`with_auto_rate0`](OnlineHybridReconstructor::with_auto_rate0),
    /// never in deferred mode).
    pub fn rate0_hz(&self) -> Option<f64> {
        self.rate0
    }

    /// Pins `rate₀` from the calibration window if the watermark (or
    /// session close at `at_s`) has passed it.
    fn try_calibrate(&mut self, at_s: f64) {
        if self.rate0.is_none() {
            if let Some(calib) = self.auto_calib_s {
                if at_s >= calib {
                    self.rate0 = Some((self.calib_events as f64 / calib).max(f64::MIN_POSITIVE));
                }
            }
        }
    }

    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front — see [`OnlineRateReconstructor::with_duration`].
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.cap_duration(duration_s);
        self
    }

    /// In-place form of
    /// [`with_duration`](OnlineHybridReconstructor::with_duration).
    pub fn cap_duration(&mut self, duration_s: f64) {
        self.track.cap_duration(duration_s);
        self.rate.cap_duration(duration_s);
    }

    /// Moves newly determined sub-estimator samples into the stages.
    fn stage(&mut self) {
        self.stage_scratch.clear();
        self.track.drain_into(&mut self.stage_scratch);
        self.vth_stage.extend(self.stage_scratch.iter().copied());
        self.stage_scratch.clear();
        self.rate.drain_into(&mut self.stage_scratch);
        self.rate_stage.extend(self.stage_scratch.iter().copied());
    }

    /// Combines staged pairs with `rate0` — the same floating-point
    /// expression, in the same order, as the batch hybrid.
    fn combine(&mut self, rate0: f64) {
        while let (Some(&v), Some(&r)) = (self.vth_stage.front(), self.rate_stage.front()) {
            self.vth_stage.pop_front();
            self.rate_stage.pop_front();
            let est = (v + self.alpha * self.lsb * (r / rate0 - 0.5)).max(0.0);
            self.emitted.push(est);
            self.total += 1;
        }
    }
}

impl OnlineReconstructor for OnlineHybridReconstructor {
    fn output_fs(&self) -> f64 {
        self.track.output_fs()
    }

    fn push_event(&mut self, time_s: f64) {
        self.push_coded(time_s, None);
    }

    fn push_coded(&mut self, time_s: f64, vth_code: Option<u8>) {
        self.events_seen += 1;
        if self
            .auto_calib_s
            .is_some_and(|c| self.rate0.is_none() && time_s <= c)
        {
            self.calib_events += 1;
        }
        self.track.push_coded(time_s, vth_code);
        self.rate.push_event(time_s);
    }

    fn advance_to(&mut self, watermark_s: f64) {
        self.track.advance_to(watermark_s);
        self.rate.advance_to(watermark_s);
        self.stage();
        self.try_calibrate(watermark_s);
        if let Some(rate0) = self.rate0 {
            self.combine(rate0);
        }
    }

    fn finish(&mut self, duration_s: f64) {
        self.track.finish(duration_s);
        self.rate.finish(duration_s);
        self.stage();
        self.try_calibrate(duration_s);
        let rate0 = self.rate0.unwrap_or_else(|| {
            // The batch normalisation, computed from exact session
            // totals: mean_rate_hz().max(MIN_POSITIVE). Auto mode lands
            // here too when the session closed inside its calibration
            // window.
            (self.events_seen as f64 / duration_s).max(f64::MIN_POSITIVE)
        });
        self.combine(rate0);
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        out.append(&mut self.emitted);
    }

    fn emitted(&self) -> usize {
        self.total
    }
}

/// Declarative per-channel reconstructor choice — what a gateway stores
/// in its per-session config and instantiates once the session header
/// announces the channel count.
///
/// | Variant | Uses | Loss behaviour |
/// |---|---|---|
/// | `Rate` | event times | rate dips over the hole, recovers in one window |
/// | `Ewma` | event times | level decays over the hole, recovers in ~τ |
/// | `ThresholdTrack` | Vth codes | holds last code, re-locks on first surviving event |
/// | `Hybrid` | both | threshold hold + rate dip, weighted by α |
///
/// # Example
///
/// ```
/// use datc_rx::online::{OnlineReconSelect, OnlineReconstructor};
///
/// let mut rx = OnlineReconSelect::paper_threshold_track().build(100.0);
/// rx.push_coded(0.1, Some(8));
/// rx.finish(1.0);
/// assert_eq!(rx.emitted(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineReconSelect {
    /// Sliding-window event rate ([`OnlineRateReconstructor`]).
    Rate {
        /// Sliding-window length, seconds.
        window_s: f64,
    },
    /// Exponentially-weighted rate ([`OnlineEwmaReconstructor`]).
    Ewma {
        /// Smoothing time constant, seconds.
        tau_s: f64,
    },
    /// D-ATC threshold-code track
    /// ([`OnlineThresholdTrackReconstructor`]).
    ThresholdTrack {
        /// DAC decoding the received codes.
        dac: Dac,
        /// Moving-average smoothing window, seconds.
        smooth_window_s: f64,
    },
    /// Threshold track + rate refinement
    /// ([`OnlineHybridReconstructor`]).
    Hybrid {
        /// DAC decoding the received codes.
        dac: Dac,
        /// Moving-average smoothing window, seconds.
        smooth_window_s: f64,
        /// Rate sliding-window length, seconds.
        rate_window_s: f64,
        /// Rate-refinement weight, DAC-LSB units.
        alpha: f64,
        /// Pinned normalisation rate; `None` defers to session totals
        /// (bit-exact with batch, emission at session close) unless
        /// `rate0_calib_s` auto-calibrates it.
        rate0_hz: Option<f64>,
        /// Auto-calibration window (seconds): with `rate0_hz: None`,
        /// measure `rate₀` from the first seconds of the session and
        /// stream from then on
        /// ([`OnlineHybridReconstructor::with_auto_rate0`]). Ignored
        /// when `rate0_hz` is pinned.
        rate0_calib_s: Option<f64>,
    },
}

impl Default for OnlineReconSelect {
    /// The experiments' streaming default: 250 ms sliding rate.
    fn default() -> Self {
        OnlineReconSelect::Rate { window_s: 0.25 }
    }
}

impl OnlineReconSelect {
    /// The paper's D-ATC receiver: 4-bit 1 V DAC, 750 ms smoothing.
    pub fn paper_threshold_track() -> Self {
        OnlineReconSelect::ThresholdTrack {
            dac: Dac::paper(),
            smooth_window_s: 0.75,
        }
    }

    /// The experiments' default hybrid (deferred `rate₀`).
    pub fn paper_hybrid() -> Self {
        OnlineReconSelect::Hybrid {
            dac: Dac::paper(),
            smooth_window_s: 0.75,
            rate_window_s: 0.75,
            alpha: 1.0,
            rate0_hz: None,
            rate0_calib_s: None,
        }
    }

    /// The default hybrid with `rate₀` auto-calibrated from the first
    /// `calib_s` seconds of each session — the long-running-hub
    /// configuration: bounded staging, and the normalisation tracks
    /// each session's own workload.
    pub fn paper_hybrid_auto_rate0(calib_s: f64) -> Self {
        OnlineReconSelect::Hybrid {
            dac: Dac::paper(),
            smooth_window_s: 0.75,
            rate_window_s: 0.75,
            alpha: 1.0,
            rate0_hz: None,
            rate0_calib_s: Some(calib_s),
        }
    }

    /// Instantiates one reconstructor emitting at `output_fs` Hz.
    pub fn build(&self, output_fs: f64) -> AnyOnlineReconstructor {
        match self {
            OnlineReconSelect::Rate { window_s } => {
                AnyOnlineReconstructor::Rate(OnlineRateReconstructor::new(*window_s, output_fs))
            }
            OnlineReconSelect::Ewma { tau_s } => {
                AnyOnlineReconstructor::Ewma(OnlineEwmaReconstructor::new(*tau_s, output_fs))
            }
            OnlineReconSelect::ThresholdTrack {
                dac,
                smooth_window_s,
            } => AnyOnlineReconstructor::ThresholdTrack(OnlineThresholdTrackReconstructor::new(
                dac.clone(),
                *smooth_window_s,
                output_fs,
            )),
            OnlineReconSelect::Hybrid {
                dac,
                smooth_window_s,
                rate_window_s,
                alpha,
                rate0_hz,
                rate0_calib_s,
            } => {
                let mut hybrid = OnlineHybridReconstructor::new(
                    dac.clone(),
                    *smooth_window_s,
                    *rate_window_s,
                    *alpha,
                    output_fs,
                );
                if let Some(r0) = rate0_hz {
                    hybrid = hybrid.with_rate0(*r0);
                } else if let Some(c) = rate0_calib_s {
                    hybrid = hybrid.with_auto_rate0(*c);
                }
                AnyOnlineReconstructor::Hybrid(Box::new(hybrid))
            }
        }
    }
}

/// Enum dispatch over the four streaming reconstructors, so a gateway
/// can hold a homogeneous `Vec` of per-channel pipelines without trait
/// objects.
#[derive(Debug, Clone)]
pub enum AnyOnlineReconstructor {
    /// Sliding-window rate.
    Rate(OnlineRateReconstructor),
    /// EWMA rate.
    Ewma(OnlineEwmaReconstructor),
    /// Threshold-code track.
    ThresholdTrack(OnlineThresholdTrackReconstructor),
    /// Threshold track + rate refinement (boxed: it embeds two
    /// sub-estimators and would otherwise dominate the enum's size).
    Hybrid(Box<OnlineHybridReconstructor>),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnyOnlineReconstructor::Rate($inner) => $body,
            AnyOnlineReconstructor::Ewma($inner) => $body,
            AnyOnlineReconstructor::ThresholdTrack($inner) => $body,
            AnyOnlineReconstructor::Hybrid($inner) => $body,
        }
    };
}

impl AnyOnlineReconstructor {
    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front — see [`OnlineRateReconstructor::with_duration`].
    pub fn cap_duration(&mut self, duration_s: f64) {
        dispatch!(self, r => r.cap_duration(duration_s));
    }
}

impl OnlineReconstructor for AnyOnlineReconstructor {
    fn output_fs(&self) -> f64 {
        dispatch!(self, r => r.output_fs())
    }

    fn push_event(&mut self, time_s: f64) {
        dispatch!(self, r => r.push_event(time_s));
    }

    fn push_coded(&mut self, time_s: f64, vth_code: Option<u8>) {
        dispatch!(self, r => r.push_coded(time_s, vth_code));
    }

    fn advance_to(&mut self, watermark_s: f64) {
        dispatch!(self, r => r.advance_to(watermark_s));
    }

    fn finish(&mut self, duration_s: f64) {
        dispatch!(self, r => r.finish(duration_s));
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        dispatch!(self, r => r.drain_into(out));
    }

    fn emitted(&self) -> usize {
        dispatch!(self, r => r.emitted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowing::{ewma_rate, sliding_rate};
    use datc_core::event::{Event, EventStream};

    fn bursty_stream(seed: u64, duration_s: f64) -> EventStream {
        // Deterministic irregular spacing without an RNG dependency.
        let mut t = 0.0f64;
        let mut x = seed | 1;
        let mut ev = Vec::new();
        let mut tick = 0u64;
        while t < duration_s {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += 1e-4 + (x % 1000) as f64 * 5e-5;
            if t >= duration_s {
                break;
            }
            ev.push(Event {
                tick,
                time_s: t,
                vth_code: Some((x % 16) as u8),
            });
            tick += 1;
        }
        EventStream::new(ev, 2000.0, duration_s)
    }

    #[test]
    fn online_rate_is_bit_exact_with_batch() {
        for seed in [3, 99, 1234] {
            let s = bursty_stream(seed, 2.3);
            let batch = sliding_rate(&s, 0.25, 100.0);
            let online = OnlineRateReconstructor::new(0.25, 100.0).run_batch(&s);
            assert_eq!(online, batch.samples(), "seed {seed}");
        }
    }

    #[test]
    fn online_ewma_is_bit_exact_with_batch() {
        for seed in [5, 42] {
            let s = bursty_stream(seed, 1.7);
            let batch = ewma_rate(&s, 0.1, 250.0);
            let online = OnlineEwmaReconstructor::new(0.1, 250.0).run_batch(&s);
            assert_eq!(online, batch.samples(), "seed {seed}");
        }
    }

    #[test]
    fn incremental_watermarks_match_one_shot_finish() {
        let s = bursty_stream(77, 2.0);
        let mut incremental = OnlineRateReconstructor::new(0.2, 100.0);
        let mut trace = Vec::new();
        for e in &s {
            incremental.push_event(e.time_s);
            incremental.advance_to(e.time_s);
            incremental.drain_into(&mut trace); // drain mid-stream too
        }
        incremental.finish(s.duration_s());
        incremental.drain_into(&mut trace);
        let batch = sliding_rate(&s, 0.2, 100.0);
        assert_eq!(trace, batch.samples());
    }

    #[test]
    fn watermark_emission_has_bounded_latency() {
        let mut rx = OnlineRateReconstructor::new(0.25, 100.0);
        rx.push_event(0.5);
        rx.advance_to(0.5);
        // every sample strictly below the watermark is out already
        assert_eq!(rx.emitted(), 50);
    }

    #[test]
    fn duration_cap_stops_overshooting_watermarks() {
        let mut rx = OnlineRateReconstructor::new(0.25, 100.0).with_duration(1.0);
        rx.push_event(5.0); // event far past the observation window
        rx.advance_to(5.0);
        rx.finish(1.0);
        assert_eq!(rx.emitted(), 100);
    }

    #[test]
    fn events_past_the_duration_cap_do_not_accumulate() {
        // A capped reconstructor fed by a misbehaving sender must stay
        // in bounded memory: once the clock is exhausted, queued events
        // can never influence a sample and are dropped.
        let mut rate = OnlineRateReconstructor::new(0.25, 100.0).with_duration(1.0);
        let mut track = OnlineThresholdTrackReconstructor::paper(100.0).with_duration(1.0);
        for k in 0..5_000u64 {
            let t = 1.0 + k as f64 * 1e-3;
            rate.push_event(t);
            track.push_coded(t, Some(3));
            if k % 100 == 0 {
                rate.advance_to(t);
                track.advance_to(t);
            }
        }
        rate.advance_to(10.0);
        track.advance_to(10.0);
        assert!(rate.incoming.is_empty(), "rate queue must be drained");
        assert!(rate.in_window.is_empty());
        assert!(track.incoming.is_empty(), "track queue must be drained");
        assert_eq!(rate.emitted(), 100);
        assert_eq!(track.emitted(), 100);
    }

    #[test]
    fn empty_feed_emits_silence() {
        let mut rx = OnlineEwmaReconstructor::new(0.25, 100.0);
        rx.finish(1.0);
        let mut out = Vec::new();
        rx.drain_into(&mut out);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_batch_rate_reconstructor() {
        let online = OnlineRateReconstructor::from(&RateReconstructor::new(0.4));
        assert_eq!(online.window_s(), 0.4);
        assert_eq!(online.output_fs(), 100.0);
    }

    #[test]
    fn online_threshold_track_is_bit_exact_with_batch() {
        use crate::reconstruct::Reconstructor;
        for seed in [7, 55, 4242] {
            let s = bursty_stream(seed, 2.1);
            let batch = ThresholdTrackReconstructor::paper().reconstruct(&s, 100.0);
            let online = OnlineThresholdTrackReconstructor::paper(100.0).run_batch(&s);
            assert_eq!(online, batch.samples(), "seed {seed}");
        }
    }

    #[test]
    fn online_threshold_track_incremental_matches_one_shot() {
        use crate::reconstruct::Reconstructor;
        let s = bursty_stream(31, 1.9);
        let mut rx = OnlineThresholdTrackReconstructor::paper(100.0);
        let mut trace = Vec::new();
        for e in &s {
            rx.push_coded(e.time_s, e.vth_code);
            rx.advance_to(e.time_s);
            rx.drain_into(&mut trace);
        }
        rx.finish(s.duration_s());
        rx.drain_into(&mut trace);
        let batch = ThresholdTrackReconstructor::paper().reconstruct(&s, 100.0);
        assert_eq!(trace, batch.samples());
    }

    #[test]
    fn threshold_track_holds_last_code_over_a_gap() {
        // Events up to t = 0.5, then silence (a declared gap): the track
        // holds the last decoded code's voltage (smoothed), it does not
        // decay to zero like the rate estimators.
        let mut rx = OnlineThresholdTrackReconstructor::new(Dac::paper(), 0.01, 100.0);
        rx.push_coded(0.1, Some(8)); // 0.5 V
        rx.finish(2.0);
        let mut out = Vec::new();
        rx.drain_into(&mut out);
        assert_eq!(out.len(), 200);
        assert!(
            (out[199] - 0.5).abs() < 1e-12,
            "held at 0.5 V: {}",
            out[199]
        );
    }

    #[test]
    fn online_hybrid_deferred_is_bit_exact_with_batch() {
        use crate::reconstruct::{HybridReconstructor, Reconstructor};
        for seed in [9, 303] {
            let s = bursty_stream(seed, 2.4);
            let batch = HybridReconstructor::paper().reconstruct(&s, 100.0);
            let online = OnlineHybridReconstructor::paper(100.0).run_batch(&s);
            assert_eq!(online, batch.samples(), "seed {seed}");
        }
    }

    #[test]
    fn online_hybrid_pinned_rate0_matches_batch_given_the_same_rate() {
        use crate::reconstruct::{HybridReconstructor, Reconstructor};
        let s = bursty_stream(17, 2.0);
        let rate0 = s.mean_rate_hz().max(f64::MIN_POSITIVE);
        let batch = HybridReconstructor::paper().reconstruct(&s, 100.0);
        // Pinned mode emits incrementally; feed with interleaved
        // watermarks to prove mid-stream emission stays exact.
        let mut rx = OnlineHybridReconstructor::paper(100.0).with_rate0(rate0);
        let mut trace = Vec::new();
        for e in &s {
            rx.push_coded(e.time_s, e.vth_code);
            rx.advance_to(e.time_s);
            rx.drain_into(&mut trace);
        }
        assert!(!trace.is_empty(), "pinned mode streams before finish");
        rx.finish(s.duration_s());
        rx.drain_into(&mut trace);
        assert_eq!(trace, batch.samples());
    }

    #[test]
    fn hybrid_auto_rate0_calibrates_then_streams_with_bounded_latency() {
        let s = bursty_stream(23, 3.0);
        let calib_s = 0.5;
        // Expected calibration: the rate over the first calib_s seconds.
        let calib_events = s.iter().filter(|e| e.time_s <= calib_s).count();
        let expected_rate0 = (calib_events as f64 / calib_s).max(f64::MIN_POSITIVE);

        let mut rx = OnlineHybridReconstructor::paper(100.0).with_auto_rate0(calib_s);
        let mut trace = Vec::new();
        let mut streamed_before_finish = 0usize;
        for e in &s {
            rx.push_coded(e.time_s, e.vth_code);
            rx.advance_to(e.time_s);
            if e.time_s < calib_s {
                assert_eq!(rx.emitted(), 0, "holds back inside the calibration window");
                assert_eq!(rx.rate0_hz(), None);
            }
            rx.drain_into(&mut trace);
            streamed_before_finish = trace.len();
        }
        assert_eq!(rx.rate0_hz(), Some(expected_rate0));
        assert!(
            streamed_before_finish > 0,
            "auto mode streams once calibrated"
        );
        rx.finish(s.duration_s());
        rx.drain_into(&mut trace);

        // Identical to pinning the measured rate up front.
        let pinned = OnlineHybridReconstructor::paper(100.0)
            .with_rate0(expected_rate0)
            .run_batch(&s);
        assert_eq!(trace, pinned);
    }

    #[test]
    fn hybrid_auto_rate0_tracks_a_nonstationary_session_better_than_a_misfit_pin() {
        use crate::reconstruct::{HybridReconstructor, Reconstructor};
        // A session whose operating point differs 8× from whatever a
        // previous session would have pinned: the deferred batch trace
        // is the reference; auto-calibration lands near it, the foreign
        // pin does not.
        let s = bursty_stream(61, 4.0);
        let reference = HybridReconstructor::paper().reconstruct(&s, 100.0);
        let auto = OnlineHybridReconstructor::paper(100.0)
            .with_auto_rate0(1.0)
            .run_batch(&s);
        let foreign_rate = s.mean_rate_hz() / 8.0;
        let pinned = OnlineHybridReconstructor::paper(100.0)
            .with_rate0(foreign_rate)
            .run_batch(&s);
        let rmse = |a: &[f64], b: &[f64]| {
            (a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / a.len() as f64).sqrt()
        };
        let auto_err = rmse(&auto, reference.samples());
        let pin_err = rmse(&pinned, reference.samples());
        assert!(
            auto_err < 0.2 * pin_err,
            "auto rmse {auto_err} vs misfit-pin rmse {pin_err}"
        );
    }

    #[test]
    fn hybrid_auto_rate0_falls_back_to_deferred_on_a_short_session() {
        use crate::reconstruct::{HybridReconstructor, Reconstructor};
        let s = bursty_stream(13, 1.5);
        let batch = HybridReconstructor::paper().reconstruct(&s, 100.0);
        // Calibration window longer than the session: exact deferred
        // semantics, bit-identical to batch.
        let online = OnlineHybridReconstructor::paper(100.0)
            .with_auto_rate0(10.0)
            .run_batch(&s);
        assert_eq!(online, batch.samples());
    }

    #[test]
    fn recon_select_auto_hybrid_builds_the_auto_mode() {
        let select = OnlineReconSelect::paper_hybrid_auto_rate0(0.5);
        let AnyOnlineReconstructor::Hybrid(h) = select.build(100.0) else {
            panic!("hybrid select must build a hybrid");
        };
        assert_eq!(h.auto_calib_s, Some(0.5));
        assert_eq!(h.rate0_hz(), None);
    }

    #[test]
    fn hybrid_deferred_withholds_until_finish() {
        let mut rx = OnlineHybridReconstructor::paper(100.0);
        rx.push_coded(0.3, Some(4));
        rx.advance_to(0.9);
        assert_eq!(rx.emitted(), 0, "deferred mode holds samples back");
        rx.finish(1.0);
        assert_eq!(rx.emitted(), 100);
    }

    #[test]
    fn recon_select_builds_every_variant_bit_exact() {
        use crate::reconstruct::{HybridReconstructor, Reconstructor};
        let s = bursty_stream(88, 1.6);
        let cases: Vec<(OnlineReconSelect, Vec<f64>)> = vec![
            (
                OnlineReconSelect::Rate { window_s: 0.25 },
                sliding_rate(&s, 0.25, 100.0).samples().to_vec(),
            ),
            (
                OnlineReconSelect::Ewma { tau_s: 0.2 },
                ewma_rate(&s, 0.2, 100.0).samples().to_vec(),
            ),
            (OnlineReconSelect::paper_threshold_track(), {
                use crate::reconstruct::ThresholdTrackReconstructor;
                ThresholdTrackReconstructor::paper()
                    .reconstruct(&s, 100.0)
                    .samples()
                    .to_vec()
            }),
            (
                OnlineReconSelect::paper_hybrid(),
                HybridReconstructor::paper()
                    .reconstruct(&s, 100.0)
                    .samples()
                    .to_vec(),
            ),
        ];
        for (select, batch) in cases {
            let online = select.build(100.0).run_batch(&s);
            assert_eq!(online, batch, "{select:?}");
        }
    }

    #[test]
    fn from_batch_threshold_tracker() {
        let online = OnlineThresholdTrackReconstructor::from(&ThresholdTrackReconstructor::paper());
        assert_eq!(online.dac(), &Dac::paper());
        assert_eq!(online.output_fs(), 100.0);
    }
}
