//! Streaming (online) counterparts of the batch receivers.
//!
//! The batch reconstructors in [`crate::reconstruct`] and the rate
//! estimators in [`crate::windowing`] need the whole [`EventStream`]
//! before they produce a single sample. A telemetry receiver decoding a
//! live wire cannot wait 20 seconds: it gets events one at a time and
//! must emit force samples with bounded latency. This module provides
//! that: an [`OnlineReconstructor`] trait plus streaming versions of the
//! sliding-window rate estimator and the EWMA estimator, **bit-exact**
//! with their batch counterparts when fed the same events in the same
//! order.
//!
//! ## The watermark contract
//!
//! Output samples live on the grid `t_k = k / output_fs`. Sample `k` can
//! only be emitted once the receiver knows no future event will carry a
//! timestamp `<= t_k`; events alone cannot prove that (silence is
//! ambiguous), so progress is driven by [`advance_to`]: the caller
//! declares a *watermark* — a lower bound on every future event time —
//! and all samples with `t_k` strictly below it are emitted. A decoder
//! naturally advances the watermark to the timestamp of each decoded
//! event (events arrive in time order), so emission lags the newest
//! event by less than one output period plus the inter-event gap.
//!
//! [`advance_to`]: OnlineReconstructor::advance_to
//!
//! ## Equivalence
//!
//! On a lossless, in-order feed closed with
//! [`finish`](OnlineReconstructor::finish), the emitted samples are
//! bit-identical to [`sliding_rate`](crate::windowing::sliding_rate) /
//! [`ewma_rate`](crate::windowing::ewma_rate) over the same stream: the
//! implementations perform the same comparisons and the same floating
//! point operations in the same order (unit-tested here, property-tested
//! at the workspace level).

use crate::reconstruct::RateReconstructor;
use datc_core::event::EventStream;
use std::collections::VecDeque;

/// A force reconstructor that accepts events incrementally and emits
/// output samples as soon as they are determined.
///
/// Lifecycle: [`push_event`](OnlineReconstructor::push_event) /
/// [`advance_to`](OnlineReconstructor::advance_to) interleaved freely,
/// then one [`finish`](OnlineReconstructor::finish); emitted samples are
/// collected with [`drain_into`](OnlineReconstructor::drain_into) at any
/// point.
///
/// # Example
///
/// ```
/// use datc_rx::online::{OnlineRateReconstructor, OnlineReconstructor};
///
/// let mut rx = OnlineRateReconstructor::new(0.25, 100.0);
/// for k in 0..50 {
///     let t = k as f64 * 0.02; // a steady 50 ev/s
///     rx.push_event(t);
///     rx.advance_to(t);
/// }
/// rx.finish(1.0);
/// let mut force = Vec::new();
/// rx.drain_into(&mut force);
/// assert_eq!(force.len(), 100); // 1 s at 100 Hz
/// assert!((force[99] - 48.0).abs() < 8.0);
/// ```
pub trait OnlineReconstructor {
    /// The output sample rate (Hz) this reconstructor emits at.
    fn output_fs(&self) -> f64;

    /// Feeds one event timestamp (seconds). Feed order defines the
    /// estimate, exactly as element order does for the batch versions.
    fn push_event(&mut self, time_s: f64);

    /// Declares that every future event will have `time > watermark_s`,
    /// releasing all samples on the output grid strictly below the
    /// watermark.
    fn advance_to(&mut self, watermark_s: f64);

    /// Closes the observation window at `duration_s` and emits every
    /// remaining sample (the batch versions emit
    /// `floor(duration_s * output_fs)` samples in total).
    fn finish(&mut self, duration_s: f64);

    /// Moves all samples emitted so far into `out` (appending), clearing
    /// the internal buffer.
    fn drain_into(&mut self, out: &mut Vec<f64>);

    /// Total samples emitted over the reconstructor's lifetime.
    fn emitted(&self) -> usize;

    /// Convenience: runs a whole [`EventStream`] through the streaming
    /// path and returns the full trace — by construction identical to
    /// the batch reconstruction of the same stream.
    fn run_batch(&mut self, events: &EventStream) -> Vec<f64> {
        for e in events {
            self.push_event(e.time_s);
        }
        self.finish(events.duration_s());
        let mut out = Vec::with_capacity(self.emitted());
        self.drain_into(&mut out);
        out
    }
}

/// Shared output-grid bookkeeping: next sample index, the hard cap set
/// once the observation window closes, and the emission buffer.
#[derive(Debug, Clone)]
struct OutputClock {
    fs: f64,
    next_k: usize,
    /// `floor(duration * fs)` once known; `usize::MAX` while streaming.
    limit: usize,
    emitted: Vec<f64>,
    total: usize,
}

impl OutputClock {
    fn new(fs: f64) -> Self {
        assert!(fs > 0.0, "output rate must be positive");
        OutputClock {
            fs,
            next_k: 0,
            limit: usize::MAX,
            emitted: Vec::new(),
            total: 0,
        }
    }

    /// The timestamp of the next undetermined sample, or `None` past the
    /// duration cap.
    fn next_t(&self) -> Option<f64> {
        (self.next_k < self.limit).then(|| self.next_k as f64 / self.fs)
    }

    fn emit(&mut self, v: f64) {
        self.emitted.push(v);
        self.next_k += 1;
        self.total += 1;
    }

    fn close(&mut self, duration_s: f64) {
        let n_out = (duration_s * self.fs).floor().max(0.0) as usize;
        self.limit = self.limit.min(n_out);
    }
}

/// Streaming sliding-window event rate — the online
/// [`RateReconstructor`] / [`sliding_rate`](crate::windowing::sliding_rate).
///
/// Keeps the events of the current window in a deque (`O(window ·
/// rate)` memory); every sample costs amortised `O(1)`.
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::online::{OnlineRateReconstructor, OnlineReconstructor};
/// use datc_rx::windowing::sliding_rate;
///
/// let ev: Vec<Event> = (0..40)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.025, vth_code: None })
///     .collect();
/// let stream = EventStream::new(ev, 1000.0, 1.0);
/// let batch = sliding_rate(&stream, 0.25, 100.0);
/// let online = OnlineRateReconstructor::new(0.25, 100.0).run_batch(&stream);
/// assert_eq!(online, batch.samples()); // bit-exact
/// ```
#[derive(Debug, Clone)]
pub struct OnlineRateReconstructor {
    window_s: f64,
    clock: OutputClock,
    /// Events pushed but not yet at/inside any emitted window.
    incoming: VecDeque<f64>,
    /// Events inside the current window (`(t - window, t]`).
    in_window: VecDeque<f64>,
}

impl OnlineRateReconstructor {
    /// Creates a streaming rate estimator over `window_s`-second windows,
    /// emitting at `output_fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics when the window or the output rate is not positive.
    pub fn new(window_s: f64, output_fs: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        OnlineRateReconstructor {
            window_s,
            clock: OutputClock::new(output_fs),
            incoming: VecDeque::new(),
            in_window: VecDeque::new(),
        }
    }

    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front (e.g. from a session header), so a watermark running past
    /// the observation window cannot overshoot the batch trace.
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.clock.close(duration_s);
        self
    }

    /// The sliding-window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Emits every sample with `t_k` strictly below `up_to`, or all
    /// remaining samples when `up_to` is `None`.
    fn run(&mut self, up_to: Option<f64>) {
        while let Some(t) = self.clock.next_t() {
            if let Some(limit) = up_to {
                if t >= limit {
                    break;
                }
            }
            // Same comparisons as the batch two-pointer sweep.
            while let Some(&front) = self.incoming.front() {
                if front <= t {
                    self.in_window.push_back(front);
                    self.incoming.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&front) = self.in_window.front() {
                if front <= t - self.window_s {
                    self.in_window.pop_front();
                } else {
                    break;
                }
            }
            self.clock.emit(self.in_window.len() as f64 / self.window_s);
        }
    }
}

impl From<&RateReconstructor> for OnlineRateReconstructor {
    /// Builds the streaming counterpart of a batch [`RateReconstructor`]
    /// at 100 Hz output (the experiments' default grid).
    fn from(batch: &RateReconstructor) -> Self {
        OnlineRateReconstructor::new(batch.window_s(), 100.0)
    }
}

impl OnlineReconstructor for OnlineRateReconstructor {
    fn output_fs(&self) -> f64 {
        self.clock.fs
    }

    fn push_event(&mut self, time_s: f64) {
        self.incoming.push_back(time_s);
    }

    fn advance_to(&mut self, watermark_s: f64) {
        self.run(Some(watermark_s));
    }

    fn finish(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
        self.run(None);
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        out.append(&mut self.clock.emitted);
    }

    fn emitted(&self) -> usize {
        self.clock.total
    }
}

/// Streaming exponentially-weighted event-rate estimate — the online
/// [`ewma_rate`](crate::windowing::ewma_rate). `O(1)` state beyond the
/// not-yet-absorbed event queue.
///
/// # Example
///
/// ```
/// use datc_core::event::{Event, EventStream};
/// use datc_rx::online::{OnlineEwmaReconstructor, OnlineReconstructor};
/// use datc_rx::windowing::ewma_rate;
///
/// let ev: Vec<Event> = (0..80)
///     .map(|i| Event { tick: i, time_s: i as f64 * 0.0125, vth_code: None })
///     .collect();
/// let stream = EventStream::new(ev, 1000.0, 1.0);
/// let batch = ewma_rate(&stream, 0.2, 200.0);
/// let online = OnlineEwmaReconstructor::new(0.2, 200.0).run_batch(&stream);
/// assert_eq!(online, batch.samples()); // bit-exact
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEwmaReconstructor {
    tau_s: f64,
    alpha: f64,
    level: f64,
    clock: OutputClock,
    incoming: VecDeque<f64>,
}

impl OnlineEwmaReconstructor {
    /// Creates a streaming EWMA estimator with time constant `tau_s`,
    /// emitting at `output_fs` Hz.
    ///
    /// # Panics
    ///
    /// Panics when the time constant or the output rate is not positive.
    pub fn new(tau_s: f64, output_fs: f64) -> Self {
        assert!(tau_s > 0.0, "time constant must be positive");
        let dt = 1.0 / output_fs;
        OnlineEwmaReconstructor {
            tau_s,
            alpha: (-dt / tau_s).exp(),
            level: 0.0,
            clock: OutputClock::new(output_fs),
            incoming: VecDeque::new(),
        }
    }

    /// Caps the output at `floor(duration_s * output_fs)` samples up
    /// front — see
    /// [`OnlineRateReconstructor::with_duration`].
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.clock.close(duration_s);
        self
    }

    /// The smoothing time constant in seconds.
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }

    fn run(&mut self, up_to: Option<f64>) {
        while let Some(t) = self.clock.next_t() {
            if let Some(limit) = up_to {
                if t >= limit {
                    break;
                }
            }
            // Identical accumulation to the batch loop: impulses counted
            // by repeated f64 increments, then one level update.
            let mut impulses = 0.0;
            while let Some(&front) = self.incoming.front() {
                if front <= t {
                    impulses += 1.0;
                    self.incoming.pop_front();
                } else {
                    break;
                }
            }
            self.level = self.alpha * self.level + impulses / self.tau_s;
            self.clock.emit(self.level);
        }
    }
}

impl OnlineReconstructor for OnlineEwmaReconstructor {
    fn output_fs(&self) -> f64 {
        self.clock.fs
    }

    fn push_event(&mut self, time_s: f64) {
        self.incoming.push_back(time_s);
    }

    fn advance_to(&mut self, watermark_s: f64) {
        self.run(Some(watermark_s));
    }

    fn finish(&mut self, duration_s: f64) {
        self.clock.close(duration_s);
        self.run(None);
    }

    fn drain_into(&mut self, out: &mut Vec<f64>) {
        out.append(&mut self.clock.emitted);
    }

    fn emitted(&self) -> usize {
        self.clock.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowing::{ewma_rate, sliding_rate};
    use datc_core::event::{Event, EventStream};

    fn bursty_stream(seed: u64, duration_s: f64) -> EventStream {
        // Deterministic irregular spacing without an RNG dependency.
        let mut t = 0.0f64;
        let mut x = seed | 1;
        let mut ev = Vec::new();
        let mut tick = 0u64;
        while t < duration_s {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += 1e-4 + (x % 1000) as f64 * 5e-5;
            if t >= duration_s {
                break;
            }
            ev.push(Event {
                tick,
                time_s: t,
                vth_code: Some((x % 16) as u8),
            });
            tick += 1;
        }
        EventStream::new(ev, 2000.0, duration_s)
    }

    #[test]
    fn online_rate_is_bit_exact_with_batch() {
        for seed in [3, 99, 1234] {
            let s = bursty_stream(seed, 2.3);
            let batch = sliding_rate(&s, 0.25, 100.0);
            let online = OnlineRateReconstructor::new(0.25, 100.0).run_batch(&s);
            assert_eq!(online, batch.samples(), "seed {seed}");
        }
    }

    #[test]
    fn online_ewma_is_bit_exact_with_batch() {
        for seed in [5, 42] {
            let s = bursty_stream(seed, 1.7);
            let batch = ewma_rate(&s, 0.1, 250.0);
            let online = OnlineEwmaReconstructor::new(0.1, 250.0).run_batch(&s);
            assert_eq!(online, batch.samples(), "seed {seed}");
        }
    }

    #[test]
    fn incremental_watermarks_match_one_shot_finish() {
        let s = bursty_stream(77, 2.0);
        let mut incremental = OnlineRateReconstructor::new(0.2, 100.0);
        let mut trace = Vec::new();
        for e in &s {
            incremental.push_event(e.time_s);
            incremental.advance_to(e.time_s);
            incremental.drain_into(&mut trace); // drain mid-stream too
        }
        incremental.finish(s.duration_s());
        incremental.drain_into(&mut trace);
        let batch = sliding_rate(&s, 0.2, 100.0);
        assert_eq!(trace, batch.samples());
    }

    #[test]
    fn watermark_emission_has_bounded_latency() {
        let mut rx = OnlineRateReconstructor::new(0.25, 100.0);
        rx.push_event(0.5);
        rx.advance_to(0.5);
        // every sample strictly below the watermark is out already
        assert_eq!(rx.emitted(), 50);
    }

    #[test]
    fn duration_cap_stops_overshooting_watermarks() {
        let mut rx = OnlineRateReconstructor::new(0.25, 100.0).with_duration(1.0);
        rx.push_event(5.0); // event far past the observation window
        rx.advance_to(5.0);
        rx.finish(1.0);
        assert_eq!(rx.emitted(), 100);
    }

    #[test]
    fn empty_feed_emits_silence() {
        let mut rx = OnlineEwmaReconstructor::new(0.25, 100.0);
        rx.finish(1.0);
        let mut out = Vec::new();
        rx.drain_into(&mut out);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_batch_rate_reconstructor() {
        let online = OnlineRateReconstructor::from(&RateReconstructor::new(0.4));
        assert_eq!(online.window_s(), 0.4);
        assert_eq!(online.output_fs(), 100.0);
    }
}
