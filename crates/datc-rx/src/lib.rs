//! # datc-rx — receiver-side reconstruction
//!
//! The paper's receiver collects asynchronous IR-UWB events on a laptop
//! and applies "low-complexity windowing … to recover the transmitted
//! force information". This crate implements that pipeline and scores it
//! with the paper's figure of merit (Pearson correlation, %):
//!
//! * [`windowing`] — sliding/tumbling event-rate estimation;
//! * [`online`] — streaming reconstructors
//!   ([`OnlineReconstructor`]) that accept
//!   events incrementally and emit force samples with bounded latency,
//!   bit-exact with the batch estimators on a lossless feed;
//! * [`reconstruct`] — four reconstructors: windowed **rate** (the ATC
//!   baseline), **threshold-track** (zero-order hold of the D-ATC
//!   threshold side information), **hybrid** (threshold + rate refinement,
//!   the default for the experiments) and a statistical **Rice-inversion**
//!   estimator that inverts the level-crossing-rate formula;
//! * [`metrics`] — correlation/RMSE evaluation against the ground-truth
//!   ARV envelope, with lag alignment;
//! * [`pipeline`] — the composable [`Link`] builder assembling any
//!   [`SpikeEncoder`](datc_core::SpikeEncoder) + channel + reconstructor
//!   into one encoder-to-force-estimate pipeline.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod metrics;
pub mod online;
pub mod pipeline;
pub mod reconstruct;
pub mod windowing;

pub use metrics::{evaluate, CorrelationReport};
pub use online::{
    AnyOnlineReconstructor, OnlineEwmaReconstructor, OnlineHybridReconstructor,
    OnlineRateReconstructor, OnlineReconSelect, OnlineReconstructor,
    OnlineThresholdTrackReconstructor,
};
pub use pipeline::{Link, LinkBuilder, LinkRun};
pub use reconstruct::{
    HybridReconstructor, RateReconstructor, Reconstructor, RiceInversionReconstructor,
    ThresholdTrackReconstructor,
};
