//! Muscle-force reconstruction from event streams.
//!
//! Four estimators, in increasing order of side-information use:
//!
//! | Reconstructor | Uses | Scheme |
//! |---|---|---|
//! | [`RateReconstructor`] | event times | ATC (and D-ATC) |
//! | [`ThresholdTrackReconstructor`] | Vth codes | D-ATC only |
//! | [`HybridReconstructor`] | both | D-ATC only |
//! | [`RiceInversionReconstructor`] | both + bandwidth prior | D-ATC (or ATC with known Vth) |
//!
//! Reconstructions are scored by Pearson correlation against the ARV
//! envelope (see [`crate::metrics`]); correlation is scale-invariant, so
//! estimators need only be *proportional* to force, matching the paper's
//! methodology.

use crate::windowing::sliding_rate;
use datc_core::dac::Dac;
use datc_core::event::EventStream;
use datc_signal::filter::{Filter, MovingAverage};
use datc_signal::Signal;

/// A muscle-force reconstructor operating on a received event stream.
///
/// Implementors return an estimate sampled at `output_fs` Hz covering the
/// stream's full observation window. The absolute scale is arbitrary
/// (correlation-based evaluation); shapes must track force.
pub trait Reconstructor {
    /// Reconstructs a force-proportional envelope from `events`.
    fn reconstruct(&self, events: &EventStream, output_fs: f64) -> Signal;
}

/// Windowed event-rate reconstruction — the paper's ATC receiver
/// ("the average number of radiated pulses is … proportional to the
/// applied muscle force", Sec. I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateReconstructor {
    window_s: f64,
}

impl RateReconstructor {
    /// Creates a rate reconstructor with the given sliding window
    /// (the experiments default to 250 ms).
    ///
    /// # Panics
    ///
    /// Panics when `window_s` is not positive.
    pub fn new(window_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        RateReconstructor { window_s }
    }

    /// The window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }
}

impl Default for RateReconstructor {
    fn default() -> Self {
        RateReconstructor::new(0.25)
    }
}

impl Reconstructor for RateReconstructor {
    fn reconstruct(&self, events: &EventStream, output_fs: f64) -> Signal {
        sliding_rate(events, self.window_s, output_fs)
    }
}

/// Zero-order hold of the received threshold codes — D-ATC's unique side
/// channel. The DTC drives `Vth` to track the mean rectified signal, so
/// the code trajectory *is* a force estimate (quantised to the DAC's LSB
/// and the frame cadence).
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdTrackReconstructor {
    dac: Dac,
    smooth_window_s: f64,
}

impl ThresholdTrackReconstructor {
    /// Creates a threshold-track reconstructor decoding codes through
    /// `dac`, then smoothing over `smooth_window_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics when the smoothing window is not positive.
    pub fn new(dac: Dac, smooth_window_s: f64) -> Self {
        assert!(smooth_window_s > 0.0, "window must be positive");
        ThresholdTrackReconstructor {
            dac,
            smooth_window_s,
        }
    }

    /// The paper's receiver: 4-bit 1 V DAC, 750 ms smoothing.
    ///
    /// The long window is deliberate: the DTC re-decides its code every
    /// frame, so the code track dithers between adjacent codes like a
    /// first-order ΔΣ modulator — averaging over several frames recovers
    /// sub-LSB amplitude resolution.
    pub fn paper() -> Self {
        ThresholdTrackReconstructor::new(Dac::paper(), 0.75)
    }

    /// The DAC decoding the received codes.
    pub fn dac(&self) -> &Dac {
        &self.dac
    }

    /// The moving-average smoothing window in seconds.
    pub fn smooth_window_s(&self) -> f64 {
        self.smooth_window_s
    }

    fn code_track(&self, events: &EventStream, output_fs: f64) -> Vec<f64> {
        let n_out = (events.duration_s() * output_fs).floor().max(0.0) as usize;
        let mut out = Vec::with_capacity(n_out);
        let evs = events.events();
        let mut idx = 0usize;
        // Before the first event the receiver knows nothing: hold 0
        // (threshold floor ≈ silence).
        let mut current = 0.0f64;
        for k in 0..n_out {
            let t = k as f64 / output_fs;
            while idx < evs.len() && evs[idx].time_s <= t {
                if let Some(code) = evs[idx].vth_code {
                    current = self.dac.voltage(u16::from(code)).unwrap_or(current);
                }
                idx += 1;
            }
            out.push(current);
        }
        out
    }
}

impl Reconstructor for ThresholdTrackReconstructor {
    fn reconstruct(&self, events: &EventStream, output_fs: f64) -> Signal {
        let track = self.code_track(events, output_fs);
        let n_win = ((self.smooth_window_s * output_fs).round() as usize).max(1);
        let mut ma = MovingAverage::new(n_win);
        let smoothed: Vec<f64> = track.iter().map(|&v| ma.process(v)).collect();
        Signal::from_samples(smoothed, output_fs)
    }
}

/// Threshold track refined by the event rate — the default D-ATC receiver
/// in the experiments.
///
/// The threshold code quantises amplitude to 62.5 mV steps; within one
/// code the crossing rate still varies with amplitude. The hybrid adds a
/// rate term scaled to the DAC LSB:
/// `est(t) = vth(t) + α·lsb·(rate(t)/rate₀ − ½)`, clamped at 0, with
/// `rate₀` the stream's mean rate.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridReconstructor {
    threshold: ThresholdTrackReconstructor,
    rate: RateReconstructor,
    alpha: f64,
}

impl HybridReconstructor {
    /// Combines the two estimators with rate-refinement weight `alpha`
    /// (in DAC-LSB units; 1.0 is a good default).
    pub fn new(
        threshold: ThresholdTrackReconstructor,
        rate: RateReconstructor,
        alpha: f64,
    ) -> Self {
        HybridReconstructor {
            threshold,
            rate,
            alpha,
        }
    }

    /// The experiments' default: paper DAC, 750 ms windows, α = 1.
    pub fn paper() -> Self {
        HybridReconstructor::new(
            ThresholdTrackReconstructor::paper(),
            RateReconstructor::new(0.75),
            1.0,
        )
    }
}

impl Reconstructor for HybridReconstructor {
    fn reconstruct(&self, events: &EventStream, output_fs: f64) -> Signal {
        let vth = self.threshold.reconstruct(events, output_fs);
        let rate = self.rate.reconstruct(events, output_fs);
        let mean_rate = events.mean_rate_hz().max(f64::MIN_POSITIVE);
        let lsb = self.threshold.dac.lsb();
        let data: Vec<f64> = vth
            .samples()
            .iter()
            .zip(rate.samples())
            .map(|(&v, &r)| (v + self.alpha * lsb * (r / mean_rate - 0.5)).max(0.0))
            .collect();
        Signal::from_samples(data, output_fs)
    }
}

/// Statistical inversion of Rice's level-crossing-rate formula.
///
/// For a band-limited Gaussian process with RMS `σ`, the expected rate of
/// positive crossings of level `v` by the *rectified* signal is
/// `r = 2·ν₀·exp(−v²/(2σ²))`, with `ν₀` the zero-crossing rate fixed by
/// the signal bandwidth (for a 20–450 Hz sEMG band, ν₀ ≈ 270 Hz).
/// Knowing `v` (the transmitted threshold) and measuring `r`, the receiver
/// solves for `σ(t) = v / √(2·ln(2ν₀/r))` and reports the Gaussian ARV
/// `σ·√(2/π)`.
///
/// This estimator exposes *why* ATC degrades: with `v` fixed and `σ ≪ v`
/// the rate collapses and the inversion loses conditioning, while D-ATC
/// keeps `v/σ` inside the well-conditioned region by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RiceInversionReconstructor {
    dac: Dac,
    nu0_hz: f64,
    window_s: f64,
    /// Fixed threshold for ATC streams (None → use transmitted codes).
    fixed_vth: Option<f64>,
}

impl RiceInversionReconstructor {
    /// Creates an inverter for D-ATC streams (threshold taken from the
    /// received codes).
    ///
    /// # Panics
    ///
    /// Panics when `nu0_hz` or `window_s` is not positive.
    pub fn new(dac: Dac, nu0_hz: f64, window_s: f64) -> Self {
        assert!(nu0_hz > 0.0, "zero-crossing rate must be positive");
        assert!(window_s > 0.0, "window must be positive");
        RiceInversionReconstructor {
            dac,
            nu0_hz,
            window_s,
            fixed_vth: None,
        }
    }

    /// Uses a fixed, a-priori-known threshold (ATC reception).
    pub fn with_fixed_vth(mut self, vth: f64) -> Self {
        self.fixed_vth = Some(vth);
        self
    }

    /// The expected ν₀ for an ideal band-pass `[f_lo, f_hi]` Gaussian
    /// process: `ν₀ = sqrt((f_hi³ − f_lo³) / (3(f_hi − f_lo)))`.
    pub fn nu0_for_band(f_lo: f64, f_hi: f64) -> f64 {
        ((f_hi.powi(3) - f_lo.powi(3)) / (3.0 * (f_hi - f_lo))).sqrt()
    }
}

impl Reconstructor for RiceInversionReconstructor {
    fn reconstruct(&self, events: &EventStream, output_fs: f64) -> Signal {
        let rate = sliding_rate(events, self.window_s, output_fs);
        // Threshold trajectory at the same rate.
        let vth_track: Vec<f64> = match self.fixed_vth {
            Some(v) => vec![v; rate.len()],
            None => ThresholdTrackReconstructor::new(self.dac.clone(), 1.0 / output_fs)
                .code_track(events, output_fs),
        };
        let data: Vec<f64> = rate
            .samples()
            .iter()
            .zip(&vth_track)
            .map(|(&r, &v)| {
                if r <= 0.0 || v <= 0.0 {
                    return 0.0;
                }
                let ratio = (2.0 * self.nu0_hz / r).max(1.0 + 1e-9);
                let sigma = v / (2.0 * ratio.ln()).sqrt();
                sigma * (2.0 / std::f64::consts::PI).sqrt()
            })
            .collect();
        Signal::from_samples(data, output_fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datc_core::atc::AtcEncoder;
    use datc_core::config::DatcConfig;
    use datc_core::datc::DatcEncoder;
    use datc_core::encoder::SpikeEncoder;
    use datc_signal::envelope::arv_envelope;
    use datc_signal::generator::{ForceProfile, SemgGenerator, SemgModel};
    use datc_signal::resample::resample_linear;
    use datc_signal::stats::pearson;

    fn reference_case(gain: f64) -> (Signal, Signal) {
        let fs = 2500.0;
        let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
        let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
            .generate(&force, 17)
            .to_scaled(gain)
            .to_rectified();
        let arv = arv_envelope(&semg, 0.25);
        (semg, arv)
    }

    fn corr_at(recon: &Signal, arv: &Signal) -> f64 {
        let arv_lo = resample_linear(arv, recon.sample_rate()).unwrap();
        let n = recon.len().min(arv_lo.len());
        pearson(&recon.samples()[..n], &arv_lo.samples()[..n]).unwrap()
    }

    #[test]
    fn rate_reconstruction_tracks_strong_signal() {
        let (semg, arv) = reference_case(0.8);
        let events = AtcEncoder::new(0.3).encode(&semg).events;
        let recon = RateReconstructor::default().reconstruct(&events, 100.0);
        let r = corr_at(&recon, &arv);
        assert!(r > 0.80, "ATC rate correlation {r}");
    }

    #[test]
    fn rate_reconstruction_fails_weak_signal() {
        // Signal far below the 0.3 V threshold: the ATC receiver goes
        // blind — the paper's Fig. 5 left tail. (Gaussian tails keep ATC
        // partially informative until the signal is well under Vth, so the
        // collapse is probed at the weakest subject gain.)
        let (semg, arv) = reference_case(0.12);
        let events = AtcEncoder::new(0.3).encode(&semg).events;
        let recon = RateReconstructor::default().reconstruct(&events, 100.0);
        let r = corr_at(&recon, &arv);
        assert!(r < 0.75, "ATC on weak signal unexpectedly good: {r}");
    }

    #[test]
    fn threshold_track_follows_weak_and_strong_signals() {
        for gain in [0.25, 0.8] {
            let (semg, arv) = reference_case(gain);
            let out = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
            let recon = ThresholdTrackReconstructor::paper().reconstruct(&out.events, 100.0);
            let r = corr_at(&recon, &arv);
            assert!(r > 0.75, "threshold track at gain {gain}: {r}");
        }
    }

    #[test]
    fn hybrid_beats_or_matches_threshold_track() {
        let (semg, arv) = reference_case(0.8);
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
        let tt = ThresholdTrackReconstructor::paper().reconstruct(&out.events, 100.0);
        let hy = HybridReconstructor::paper().reconstruct(&out.events, 100.0);
        let r_tt = corr_at(&tt, &arv);
        let r_hy = corr_at(&hy, &arv);
        assert!(r_hy > r_tt - 0.02, "hybrid {r_hy} vs track {r_tt}");
    }

    #[test]
    fn rice_inversion_recovers_amplitude_scale() {
        // Unlike the others, Rice inversion is absolutely calibrated:
        // check the reconstructed level is within 2× of the true ARV.
        let (semg, arv) = reference_case(0.8);
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
        let nu0 = RiceInversionReconstructor::nu0_for_band(20.0, 450.0);
        let recon = RiceInversionReconstructor::new(Dac::paper(), nu0, 0.25)
            .reconstruct(&out.events, 100.0);
        let r = corr_at(&recon, &arv);
        assert!(r > 0.7, "rice correlation {r}");
        // amplitude sanity at the strongest contraction
        let peak_est = recon.samples().iter().cloned().fold(0.0f64, f64::max);
        let peak_ref = arv.samples().iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak_est > 0.4 * peak_ref && peak_est < 2.5 * peak_ref,
            "est {peak_est} vs ref {peak_ref}"
        );
    }

    #[test]
    fn nu0_formula_matches_flat_band_expectation() {
        // For a low-pass band [0, B]: nu0 = B/sqrt(3).
        let nu0 = RiceInversionReconstructor::nu0_for_band(1e-9, 300.0);
        assert!((nu0 - 300.0 / 3.0f64.sqrt()).abs() < 1.0);
    }

    #[test]
    fn empty_stream_reconstructs_to_silence() {
        let events = datc_core::event::EventStream::new(vec![], 2000.0, 1.0);
        for recon in [
            RateReconstructor::default().reconstruct(&events, 100.0),
            ThresholdTrackReconstructor::paper().reconstruct(&events, 100.0),
            HybridReconstructor::paper().reconstruct(&events, 100.0),
        ] {
            assert!(recon.samples().iter().all(|&x| x.abs() < 1e-6));
        }
    }
}
