//! Table I in action: build the gate-level DTC, verify it against the
//! behavioural model in lockstep, run the reference workload, and print
//! synthesis + power reports.
//!
//! Run with: `cargo run --release --example rtl_power`

use datc::core::DatcConfig;
use datc::experiments::figures::table1;
use datc::rtl::dtc_rtl::build_dtc_netlist;
use datc::rtl::verify::lockstep;
use datc::rtl::verilog::to_verilog;

fn main() {
    // 1. "Verilog matches Matlab": lockstep the gate-level netlist
    //    against the behavioural DTC on a pseudo-random bit stream.
    let stim: Vec<bool> = (0..10_000u32)
        .map(|k| (k.wrapping_mul(2654435761) >> 13) % 100 < 27)
        .collect();
    match lockstep(DatcConfig::paper(), stim).expect("paper config is valid") {
        None => println!("lockstep RTL vs behavioural: MATCH over 10000 cycles"),
        Some(m) => panic!("RTL diverged: {m:?}"),
    }

    // 2. Export the netlist as synthesisable Verilog (the reverse of the
    //    paper's Modelsim/Synopsys path).
    let verilog = to_verilog(&build_dtc_netlist(&DatcConfig::paper()), "dtc");
    let path = std::env::temp_dir().join("dtc.v");
    std::fs::write(&path, &verilog).expect("temp dir is writable");
    println!(
        "wrote {} lines of Verilog to {}",
        verilog.lines().count(),
        path.display()
    );

    // 3. The Table I flow on the full 20 s reference recording.
    println!("\n{}", table1::report());
    println!("Note: cell count/area come from the structural mapping (no");
    println!("commercial optimiser); the estimated power column uses the");
    println!("default-activity methodology the paper's ~70 nW figure implies,");
    println!("while the measured column uses real switching activity.");
}
