//! Explore the synthetic 190-pattern corpus standing in for the paper's
//! recordings: per-subject amplitudes, band occupancy, and the Fig. 5
//! correlation sweep summary.
//!
//! Run with: `cargo run --release --example dataset_explorer [n_patterns]`

use datc::experiments::figures::fig5;
use datc::signal::dataset::{Dataset, DatasetConfig};
use datc::signal::fft::{band_power, welch_psd};
use datc::signal::stats::arv;
use datc::signal::window::WindowKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    let dataset = Dataset::new(DatasetConfig::default());
    println!(
        "corpus: {} patterns, {} subjects, {:.0} s each at {:.0} Hz\n",
        dataset.len(),
        dataset.subjects().subjects().len(),
        dataset.config().duration(),
        dataset.config().sample_rate,
    );

    println!("subject  MVC gain   mains    artifacts");
    for s in dataset.subjects().subjects() {
        println!(
            "{:>7}  {:>6.2} V  {:>5.1} mV  {:>6.2} /s",
            s.id,
            s.mvc_gain_v,
            s.mains_amplitude_v * 1e3,
            s.artifact_rate_hz
        );
    }

    println!("\npattern  subject  ARV(V)   in-band fraction");
    for id in 0..n.min(dataset.len()).min(12) {
        let p = dataset.pattern(id);
        let (freqs, psd) = welch_psd(p.semg.samples(), 2500.0, 1024, WindowKind::Hann)
            .expect("patterns are long enough");
        let total = band_power(&freqs, &psd, 0.0, 1250.0).max(f64::MIN_POSITIVE);
        let in_band = band_power(&freqs, &psd, 20.0, 450.0);
        println!(
            "{:>7}  {:>7}  {:>6.3}  {:>6.1} %",
            id,
            p.subject.id,
            arv(p.semg.samples()),
            100.0 * in_band / total
        );
    }

    println!("\nrunning Fig. 5 sweep over {n} patterns…");
    println!("{}", fig5::report(n));
}
