//! Quickstart: synthesise an sEMG recording, encode it with ATC and
//! D-ATC, reconstruct muscle force at the receiver and print the paper's
//! headline comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use datc::core::atc::AtcEncoder;
use datc::core::{DatcConfig, DatcEncoder};
use datc::rx::metrics::evaluate;
use datc::rx::{HybridReconstructor, RateReconstructor, Reconstructor};
use datc::signal::envelope::arv_envelope;
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};

fn main() {
    // 1. A 20 s grip-protocol recording (the paper's workload shape).
    let fs = 2500.0;
    let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
    let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, 42)
        .to_scaled(0.40) // a mid-amplitude subject
        .to_rectified();
    let arv = arv_envelope(&semg, 0.25);
    println!(
        "signal: {} samples over {:.0} s",
        semg.len(),
        semg.duration()
    );

    // 2. Fixed-threshold ATC at the paper's 0.3 V.
    let atc_events = AtcEncoder::new(0.3).encode(&semg);
    let atc_recon = RateReconstructor::default().reconstruct(&atc_events, 100.0);
    let atc_corr = evaluate(&atc_recon, &arv, 0.3).expect("signals are long enough");

    // 3. D-ATC with the paper's configuration (2 kHz clock, frame 100,
    //    4-bit DAC, weights 1/0.65/0.35).
    let datc = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
    let datc_recon = HybridReconstructor::paper().reconstruct(&datc.events, 100.0);
    let datc_corr = evaluate(&datc_recon, &arv, 0.3).expect("signals are long enough");

    println!("\n              events  symbols  correlation");
    println!(
        "ATC  @0.3 V   {:>6}  {:>7}  {:>10.1} %",
        atc_events.len(),
        atc_events.symbol_count(4),
        atc_corr.percent
    );
    println!(
        "D-ATC         {:>6}  {:>7}  {:>10.1} %",
        datc.events.len(),
        datc.events.symbol_count(4),
        datc_corr.percent
    );
    println!(
        "\nD-ATC adapts its threshold over {} DAC codes (min {} / max {})",
        datc.vth_code_trace
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        datc.vth_code_trace.iter().min().unwrap(),
        datc.vth_code_trace.iter().max().unwrap(),
    );
}
