//! Quickstart: synthesise an sEMG recording, run it through ATC and
//! D-ATC `Link` pipelines, and print the paper's headline comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use datc::core::atc::AtcEncoder;
use datc::core::{DatcConfig, DatcEncoder};
use datc::rx::pipeline::Link;
use datc::rx::{HybridReconstructor, RateReconstructor};
use datc::signal::envelope::arv_envelope;
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};

fn main() {
    // 1. A 20 s grip-protocol recording (the paper's workload shape).
    let fs = 2500.0;
    let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
    let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, 42)
        .to_scaled(0.40) // a mid-amplitude subject
        .to_rectified();
    let arv = arv_envelope(&semg, 0.25);
    println!(
        "signal: {} samples over {:.0} s",
        semg.len(),
        semg.duration()
    );

    // 2. Two pipelines from the same builder, differing only in the
    //    encoder and reconstructor slots: fixed-threshold ATC at the
    //    paper's 0.3 V vs D-ATC at the paper's operating point.
    let atc_link = Link::builder()
        .encoder(AtcEncoder::new(0.3))
        .reconstructor(RateReconstructor::default())
        .build();
    let datc_link = Link::builder()
        .encoder(DatcEncoder::new(DatcConfig::paper()))
        .reconstructor(HybridReconstructor::paper())
        .build();

    let (atc_run, atc_pct) = atc_link.run_scored(&semg, &arv, 0.3);
    let (datc_run, datc_pct) = datc_link.run_scored(&semg, &arv, 0.3);

    println!("\n              events  symbols  correlation");
    println!(
        "ATC  @0.3 V   {:>6}  {:>7}  {:>10.1} %",
        atc_run.transmission.encoded.events.len(),
        atc_run.transmission.symbols_on_air,
        atc_pct
    );
    println!(
        "D-ATC         {:>6}  {:>7}  {:>10.1} %",
        datc_run.transmission.encoded.events.len(),
        datc_run.transmission.symbols_on_air,
        datc_pct
    );

    // 3. The D-ATC output still carries the full threshold trace
    //    (TraceLevel::Full is the default) for figure-style inspection.
    let datc = &datc_run.transmission.encoded;
    println!(
        "\nD-ATC adapts its threshold over {} DAC codes (min {} / max {}), duty {:.1} %",
        datc.vth_code_trace
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        datc.vth_code_trace.iter().min().unwrap(),
        datc.vth_code_trace.iter().max().unwrap(),
        datc.duty_cycle() * 100.0,
    );
}
