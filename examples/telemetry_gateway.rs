//! Telemetry gateway demo: a fleet of simulated sensors streams
//! D-ATC events into one shared session table — half over TCP, half
//! over UDP datagrams — while the hubs decode incrementally and
//! reconstruct per-channel force online (the paper's threshold-track
//! receiver), in bounded memory. A final offline replay shows the
//! exact loss books on a link that drops packets.
//!
//! Run with: `cargo run --release --example telemetry_gateway`

use datc::core::{DatcConfig, TraceLevel};
use datc::engine::FleetRunner;
use datc::rx::online::OnlineReconSelect;
use datc::signal::generator::semg_fleet;
use datc::wire::udp::{udp_stream_fleet, UdpTelemetryHub};
use datc::wire::{stream_fleet, HubConfig, SessionRx, SessionRxConfig, SessionTable, TelemetryHub};

fn main() {
    let n_sensors = 4u32;
    let channels = 4usize;
    let seconds = 5.0;
    let dead_time = 25e-6;

    // 1. Two ingest points — TCP and UDP — sharing one session table,
    //    every channel running the paper's D-ATC threshold-track
    //    receiver in bounded memory.
    let config = HubConfig {
        session: SessionRxConfig {
            recon: OnlineReconSelect::paper_threshold_track(),
            ..HubConfig::default().session
        },
        ..HubConfig::default()
    };
    let table = SessionTable::shared();
    let tcp_hub = TelemetryHub::bind_with("127.0.0.1:0", config.clone(), table.clone(), None)
        .expect("bind tcp loopback");
    let udp_hub = UdpTelemetryHub::bind_with("127.0.0.1:0", config, table.clone(), None)
        .expect("bind udp loopback");
    let tcp_addr = tcp_hub.local_addr();
    let udp_addr = udp_hub.local_addr();
    println!("telemetry hubs listening on {tcp_addr} (tcp) and {udp_addr} (udp)");

    // 2. N sensors in parallel: encode → merge AER → packetize →
    //    alternating transports.
    let workers: Vec<_> = (0..n_sensors)
        .map(|id| {
            std::thread::spawn(move || {
                let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
                let signals = semg_fleet(channels, seconds, 100 + u64::from(id) * 31);
                let fleet = FleetRunner::new(config, channels)
                    .expect("valid fleet")
                    .encode(&signals);
                let (transport, report) = if id % 2 == 0 {
                    (
                        "tcp",
                        stream_fleet(tcp_addr, id, &fleet, dead_time).expect("stream"),
                    )
                } else {
                    (
                        "udp",
                        udp_stream_fleet(udp_addr, id, &fleet, dead_time).expect("stream"),
                    )
                };
                println!(
                    "sensor {id} ({transport}): {} events in {} frames, {:.2} bytes/event",
                    report.events_sent,
                    report.frames_sent,
                    report.bytes_sent as f64 / report.events_sent.max(1) as f64,
                );
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // 3. One operator view over both transports: per-session decode
    //    books and bounded force tails.
    udp_hub.shutdown();
    tcp_hub.shutdown();
    let sessions = table.snapshot();
    println!("\nhubs closed with {} sessions:", sessions.len());
    println!("session  channels  events  lost  force-samples  tail-kept");
    for s in &sessions {
        println!(
            "{:>7}  {:>8}  {:>6}  {:>4}  {:>13}  {:>9}",
            s.session_id,
            s.report.force_tail.len(),
            s.report.stats.events_decoded,
            s.report.stats.events_lost,
            s.report.force_samples(),
            s.report.force_tail.iter().map(Vec::len).sum::<usize>(),
        );
    }

    // 4. The same table, through the metrics registry: the hub
    //    roll-ups every layer published into, rendered in Prometheus
    //    text exposition — what a scrape of this gateway would return.
    println!("\nmetrics snapshot at shutdown:");
    for line in datc::obs::render_prometheus(table.registry()).lines() {
        println!("  {line}");
    }

    // 5. A lossy link, offline: replay one sensor's wire image with 20 %
    //    of DATA frames dropped and watch the books stay exact.
    let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
    let signals = semg_fleet(channels, seconds, 999);
    let fleet = FleetRunner::new(config, channels).unwrap().encode(&signals);
    let merged = fleet.merge_aer(dead_time);
    let header = datc::wire::SessionHeader::new(
        99,
        channels as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let mut tx = datc::wire::Packetizer::new(header);
    let mut rx = SessionRx::new(SessionRxConfig::default());
    rx.push_bytes(&tx.hello());
    for (i, frame) in tx.data_frames(&merged.merged).iter().enumerate() {
        if i % 5 != 2 {
            rx.push_bytes(frame);
        }
    }
    rx.push_bytes(&tx.bye());
    let report = rx.finish();
    println!(
        "\nlossy replay: {} events decoded, {} lost (exact), {} gaps, force finite: {}",
        report.stats.events_decoded,
        report.stats.events_lost,
        report.stats.gaps,
        report.force_is_finite(),
    );
}
