//! Telemetry gateway demo: a fleet of simulated sensors streams
//! D-ATC events over TCP loopback into a `TelemetryHub`, which decodes
//! incrementally and reconstructs per-channel force online — including
//! one sensor whose link drops packets.
//!
//! Run with: `cargo run --release --example telemetry_gateway`

use datc::core::{DatcConfig, TraceLevel};
use datc::engine::FleetRunner;
use datc::signal::generator::semg_fleet;
use datc::wire::{stream_fleet, HubConfig, SessionRx, SessionRxConfig, TelemetryHub};

fn main() {
    let n_sensors = 4u32;
    let channels = 4usize;
    let seconds = 5.0;
    let dead_time = 25e-6;

    // 1. The gateway: one TCP ingest point for the whole sensor fleet.
    let hub = TelemetryHub::bind("127.0.0.1:0", HubConfig::default()).expect("bind loopback");
    let addr = hub.local_addr();
    println!("telemetry hub listening on {addr}");

    // 2. N sensors in parallel: encode → merge AER → packetize → TCP.
    let workers: Vec<_> = (0..n_sensors)
        .map(|id| {
            std::thread::spawn(move || {
                let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
                let signals = semg_fleet(channels, seconds, 100 + u64::from(id) * 31);
                let fleet = FleetRunner::new(config, channels)
                    .expect("valid fleet")
                    .encode(&signals);
                let report = stream_fleet(addr, id, &fleet, dead_time).expect("stream");
                println!(
                    "sensor {id}: {} events in {} frames, {:.2} bytes/event",
                    report.events_sent,
                    report.frames_sent,
                    report.bytes_sent as f64 / report.events_sent.max(1) as f64,
                );
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // 3. The hub's view: per-session decode books and force traces.
    let sessions = hub.shutdown();
    println!("\nhub closed with {} sessions:", sessions.len());
    println!("session  channels  events  lost  force-samples");
    for s in &sessions {
        println!(
            "{:>7}  {:>8}  {:>6}  {:>4}  {:>13}",
            s.session_id,
            s.report.force.len(),
            s.report.stats.events_decoded,
            s.report.stats.events_lost,
            s.report.force_samples(),
        );
    }

    // 4. A lossy link, offline: replay one sensor's wire image with 20 %
    //    of DATA frames dropped and watch the books stay exact.
    let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
    let signals = semg_fleet(channels, seconds, 999);
    let fleet = FleetRunner::new(config, channels).unwrap().encode(&signals);
    let merged = fleet.merge_aer(dead_time);
    let header = datc::wire::SessionHeader::new(
        99,
        channels as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let mut tx = datc::wire::Packetizer::new(header);
    let mut rx = SessionRx::new(SessionRxConfig::default());
    rx.push_bytes(&tx.hello());
    for (i, frame) in tx.data_frames(&merged.merged).iter().enumerate() {
        if i % 5 != 2 {
            rx.push_bytes(frame);
        }
    }
    rx.push_bytes(&tx.bye());
    let report = rx.finish();
    println!(
        "\nlossy replay: {} events decoded, {} lost (exact), {} gaps, force finite: {}",
        report.stats.events_decoded,
        report.stats.events_lost,
        report.stats.gaps,
        report.force_is_finite(),
    );
}
