//! End-to-end wireless muscle-force link: sEMG → D-ATC encoder → IR-UWB
//! symbol link (with losses) → receiver → force estimate, assembled with
//! the composable `Link` builder.
//!
//! Demonstrates the paper's robustness remark that "artifacts effect is
//! similar to pulse missing": the link is degraded progressively and the
//! correlation is re-scored.
//!
//! Run with: `cargo run --release --example muscle_force_link`

use datc::core::{DatcConfig, DatcEncoder, SpikeEncoder, TraceLevel};
use datc::rx::pipeline::Link;
use datc::rx::HybridReconstructor;
use datc::signal::envelope::arv_envelope;
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc::uwb::channel::{AwgnChannel, SymbolChannel};
use datc::uwb::energy::TxEnergyModel;
use datc::uwb::modulator::{symbolize_events, OokModulator, Symbol};
use datc::uwb::psd::{check_fcc_mask, FCC_LIMIT_DBM_PER_MHZ};
use datc::uwb::pulse::GaussianPulse;
use datc::uwb::receiver::{EnergyDetector, SymbolErrorReport};

fn main() {
    // --- transmitter side -------------------------------------------------
    let fs = 2500.0;
    let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
    let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, 7)
        .to_scaled(0.5)
        .to_rectified();
    let arv = arv_envelope(&semg, 0.25);

    // encode once at the events-only trace level (link hot path)
    let encoder = DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events));
    let tx = encoder.encode(&semg);
    let patterns = symbolize_events(&tx.events, 4);
    println!(
        "TX: {} events → {} symbols",
        tx.events.len(),
        tx.events.symbol_count(4)
    );

    // --- PHY sanity: FCC mask on a representative burst --------------------
    let modulator = OokModulator::new(GaussianPulse::paper_tx(), 10e-9);
    let burst: Vec<Symbol> = patterns
        .iter()
        .take(100)
        .flat_map(|p| p.symbols.clone())
        .collect();
    let mask = check_fcc_mask(&modulator, &burst, 20e9, 1e9, 8e9);
    println!(
        "PSD peak {:.1} dBm/MHz at {:.2} GHz (limit {} dBm/MHz, margin {:+.1} dB)",
        mask.peak_dbm_per_mhz,
        mask.peak_freq_hz / 1e9,
        FCC_LIMIT_DBM_PER_MHZ,
        mask.margin_db
    );

    // --- link quality sweep: one Link per operating point -------------------
    let channel = AwgnChannel::wban();
    println!(
        "\nWBAN path loss: {:.1} dB at 1 m, {:.1} dB at 3 m",
        channel.path_loss_db(1.0),
        channel.path_loss_db(3.0)
    );

    // --- waveform-level receiver loop: burst over distance ------------------
    // One receive buffer serves the whole sweep (`propagate_into` reuses
    // its allocation; the Signal round-trips through it with zero copies).
    let symbol_period = 10e-9;
    let rx_fs = 20e9;
    let training: Vec<Symbol> = burst.iter().take(512).cloned().collect();
    let tx_wave = modulator.waveform(&training, rx_fs);
    let mut rx_buf: Vec<f64> = Vec::new();
    println!("\ndistance  SNR      symbol errors");
    for d_m in [0.5, 1.0, 2.0, 3.0] {
        channel.propagate_into(&tx_wave, d_m, 71, &mut rx_buf);
        let rx = datc::signal::Signal::from_samples(std::mem::take(&mut rx_buf), rx_fs);
        let errors = EnergyDetector::calibrate(symbol_period, &rx, &training)
            .map(|det| SymbolErrorReport::compare(&training, &det.detect(&rx)).error_rate())
            .unwrap_or(1.0);
        println!(
            "{d_m:>5.1} m  {:>5.1} dB  {:>6.2} %",
            channel.snr_db(1.0, d_m),
            errors * 100.0
        );
        rx_buf = rx.into_samples();
    }
    println!("\nloss rate  delivered  corrupted  TX power  correlation");
    for p_miss in [0.0, 0.01, 0.05, 0.1, 0.2, 0.4] {
        let link = Link::builder()
            .encoder(encoder.clone())
            .channel(SymbolChannel::new(p_miss, 1e-5))
            .energy_model(TxEnergyModel::paper_class())
            .seed(99)
            .reconstructor(HybridReconstructor::paper())
            .build();
        // the event stream is deterministic — encode once, sweep the channel
        let run = link.run_encoded(tx.clone());
        let corr = run.score(&arv, 0.3).map(|r| r.percent).unwrap_or(0.0);
        println!(
            "{:>8.0} %  {:>9}  {:>9}  {:>6.0} nW  {:>10.1} %",
            p_miss * 100.0,
            run.transmission.received().len(),
            run.transmission.transport.corrupted_codes,
            run.transmission
                .energy
                .map(|e| e.average_power_w * 1e9)
                .unwrap_or(0.0),
            corr
        );
    }
    println!("\nevent loss degrades the estimate gracefully — the paper's");
    println!("\"artifacts effect is similar to pulse missing\" in action.");
}
