//! End-to-end wireless muscle-force link: sEMG → D-ATC encoder → IR-UWB
//! symbol link (with losses) → receiver → force estimate.
//!
//! Demonstrates the paper's robustness remark that "artifacts effect is
//! similar to pulse missing": the link is degraded progressively and the
//! correlation is re-scored.
//!
//! Run with: `cargo run --release --example muscle_force_link`

use datc::core::{DatcConfig, DatcEncoder};
use datc::rx::metrics::evaluate;
use datc::rx::{HybridReconstructor, Reconstructor};
use datc::signal::envelope::arv_envelope;
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc::uwb::channel::{AwgnChannel, SymbolChannel};
use datc::uwb::link::EventLink;
use datc::uwb::modulator::{symbolize_events, OokModulator, Symbol};
use datc::uwb::psd::{check_fcc_mask, FCC_LIMIT_DBM_PER_MHZ};
use datc::uwb::pulse::GaussianPulse;

fn main() {
    // --- transmitter side -------------------------------------------------
    let fs = 2500.0;
    let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
    let semg = SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, 7)
        .to_scaled(0.5)
        .to_rectified();
    let arv = arv_envelope(&semg, 0.25);
    let tx = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
    let patterns = symbolize_events(&tx.events, 4);
    println!(
        "TX: {} events → {} symbols",
        tx.events.len(),
        tx.events.symbol_count(4)
    );

    // --- PHY sanity: FCC mask on a representative burst --------------------
    let modulator = OokModulator::new(GaussianPulse::paper_tx(), 10e-9);
    let burst: Vec<Symbol> = patterns
        .iter()
        .take(100)
        .flat_map(|p| p.symbols.clone())
        .collect();
    let mask = check_fcc_mask(&modulator, &burst, 20e9, 1e9, 8e9);
    println!(
        "PSD peak {:.1} dBm/MHz at {:.2} GHz (limit {} dBm/MHz, margin {:+.1} dB)",
        mask.peak_dbm_per_mhz,
        mask.peak_freq_hz / 1e9,
        FCC_LIMIT_DBM_PER_MHZ,
        mask.margin_db
    );

    // --- link quality sweep -------------------------------------------------
    let channel = AwgnChannel::wban();
    println!("\nWBAN path loss: {:.1} dB at 1 m, {:.1} dB at 3 m", channel.path_loss_db(1.0), channel.path_loss_db(3.0));
    println!("\nloss rate  delivered  corrupted  correlation");
    for p_miss in [0.0, 0.01, 0.05, 0.1, 0.2, 0.4] {
        let link = EventLink::new(SymbolChannel::new(p_miss, 1e-5), 4);
        let report = link.transport(&tx.events, 99);
        let recon = HybridReconstructor::paper().reconstruct(&report.received, 100.0);
        let corr = evaluate(&recon, &arv, 0.3).map(|r| r.percent).unwrap_or(0.0);
        println!(
            "{:>8.0} %  {:>9}  {:>9}  {:>10.1} %",
            p_miss * 100.0,
            report.received.len(),
            report.corrupted_codes,
            corr
        );
    }
    println!("\nevent loss degrades the estimate gracefully — the paper's");
    println!("\"artifacts effect is similar to pulse missing\" in action.");
}
