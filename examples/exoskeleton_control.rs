//! Multi-channel AER D-ATC driving a 1-DOF grip controller — the
//! hand-exoskeleton scenario the paper's introduction motivates (Ref. [8]:
//! "Continuous Position Control of 1 DOF Manipulator Using EMG Signals").
//!
//! Four forearm electrodes are encoded independently, merged over one
//! Address-Event link (collisions included), demultiplexed at the
//! receiver, and the reconstructed flexor/extensor balance drives a
//! first-order grip-aperture model.
//!
//! Run with: `cargo run --release --example exoskeleton_control`

use datc::core::{DatcConfig, DatcEncoder, EncoderBank, TraceLevel};
use datc::rx::{HybridReconstructor, Reconstructor};
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc::signal::stats::pearson;
use datc::uwb::aer::{address_bits, demux, merge_encoder_bank};

fn main() {
    let fs = 2500.0;
    let duration = 12.0;

    // Two flexor channels track the grip command, two extensor channels
    // its complement (co-contraction scaled down).
    let grip = ForceProfile::builder()
        .rest(1.0)
        .ramp(0.0, 0.6, 2.0)
        .hold(0.6, 2.0)
        .ramp(0.6, 0.2, 2.0)
        .hold(0.2, 2.0)
        .ramp(0.2, 0.0, 2.0)
        .rest(1.0)
        .build();
    let cmd = grip.samples(fs, duration);
    let release: Vec<f64> = cmd.iter().map(|f| 0.4 * (1.0 - f)).collect();

    let gen = SemgGenerator::new(SemgModel::modulated_noise(), fs);
    let electrodes: Vec<_> = [
        (&cmd, 0.55, 11u64),
        (&cmd, 0.35, 12),
        (&release, 0.50, 13),
        (&release, 0.30, 14),
    ]
    .iter()
    .map(|(force, gain, seed)| gen.generate(force, *seed).to_scaled(*gain).to_rectified())
    .collect();

    // --- encoder bank + AER merge over one serial IR-UWB link ---------------
    // One D-ATC encoder per electrode (events-only trace: hot path), then
    // dead time = 5 symbols × 1 µs symbol slot on the shared link.
    let bank = EncoderBank::replicate(
        DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events)),
        electrodes.len(),
    );
    let merge = merge_encoder_bank(&bank, &electrodes, 5e-6);
    println!(
        "AER: {} channels ({} address bits), {} events merged, {} collisions",
        bank.channels(),
        address_bits(bank.channels()),
        merge.merged.len(),
        merge.collisions
    );

    // --- receiver: demux, reconstruct, drive the actuator -------------------
    let streams = demux(&merge.merged, bank.channels(), 2000.0, duration);
    let recon = HybridReconstructor::paper();
    let estimates: Vec<_> = streams
        .iter()
        .map(|s| recon.reconstruct(s, 100.0))
        .collect();

    // flexion drive = mean(flexors) − mean(extensors), rectified
    let n = estimates[0].len();
    let mut aperture = Vec::with_capacity(n);
    let mut pos = 0.0f64; // grip aperture 0 (open) … 1 (closed)
    let tau = 0.35; // actuator time constant, seconds
    let dt = 1.0 / 100.0;
    for i in 0..n {
        let flex = 0.5 * (estimates[0].samples()[i] + estimates[1].samples()[i]);
        let ext = 0.5 * (estimates[2].samples()[i] + estimates[3].samples()[i]);
        let drive = (4.0 * (flex - 0.5 * ext)).clamp(0.0, 1.0);
        pos += dt / tau * (drive - pos);
        aperture.push(pos);
    }

    // --- score against the commanded grip -----------------------------------
    let cmd_at_100: Vec<f64> = (0..n)
        .map(|i| {
            let idx = ((i as f64 / 100.0) * fs) as usize;
            cmd.get(idx).copied().unwrap_or(0.0)
        })
        .collect();
    let r = pearson(&aperture, &cmd_at_100).expect("equal lengths");
    println!("grip-aperture vs command correlation: {:.1} %", r * 100.0);

    // a coarse trace for the terminal
    print!("command : ");
    for i in (0..n).step_by(n / 60) {
        print!("{}", glyph(cmd_at_100[i]));
    }
    print!("\naperture: ");
    for i in (0..n).step_by(n / 60) {
        print!("{}", glyph(aperture[i]));
    }
    println!();
    assert!(r > 0.8, "control tracking degraded: {:.2}", r);
}

fn glyph(x: f64) -> char {
    const G: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    G[((x.clamp(0.0, 1.0)) * 7.0).round() as usize]
}
