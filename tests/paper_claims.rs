//! The paper's headline claims, asserted end to end through the
//! experiment runners (shape criteria — see EXPERIMENTS.md for the
//! paper-vs-measured numbers).

use datc::experiments::figures::{fig3, fig5, fig6, symbols, table1};

#[test]
fn fig3_datc_beats_atc_in_correlation() {
    let r = fig3::run();
    assert!(r.datc_correlation > r.atc_correlation);
    assert!(r.datc_correlation > 92.0, "D-ATC {:.1}", r.datc_correlation);
    // paper: 3183 / 3724 events — ours must be thousands, D-ATC above ATC
    assert!(r.datc_events > r.atc_events);
}

#[test]
fn fig5_datc_is_robust_across_the_corpus() {
    // 24 patterns (3 per subject) span the gain range
    let r = fig5::run(24);
    assert!(r.datc_summary.min > r.atc_summary.min + 5.0);
    assert!(r.atc_summary.spread() > 2.0 * r.datc_summary.spread());
    assert!(
        r.datc_summary.min > 80.0,
        "D-ATC floor {:.1}",
        r.datc_summary.min
    );
}

#[test]
fn fig6_matched_correlation_costs_events() {
    let r = fig6::run();
    assert!((r.atc_low_correlation - r.datc_correlation).abs() < 6.0);
    assert!(r.atc_low_events as f64 > 1.15 * r.datc_events as f64);
}

#[test]
fn symbol_economy_ordering() {
    let r = symbols::run();
    assert_eq!(r.packet_symbols, 600_000);
    assert!(r.packet_symbols > 10 * r.datc_symbols);
    assert!(r.datc_symbols > r.atc_high_symbols);
}

#[test]
fn table1_stays_in_the_ultra_low_power_class() {
    let r = table1::run(4_000);
    assert!(r.synth.cell_count < 3_000);
    assert!(r.synth.core_area_um2 < 60_000.0);
    assert!(r.power_estimated.total_w() < 1e-6);
    assert!(r.power_measured.total_w() < 1e-6);
}
