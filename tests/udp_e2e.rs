//! UDP gateway smoke test (the CI gate for the datagram transport) plus
//! the shutdown-under-load drain guarantees for both hubs.
//!
//! * D-ATC threshold-track reconstruction through the **UDP** hub and
//!   the **TCP** hub is bit-identical to the batch
//!   `ThresholdTrackReconstructor` on a lossless feed;
//! * stopping either hub mid-session drains every decoded event to the
//!   attached `SessionSink` exactly once, without deadlock.

use std::sync::Arc;
use std::time::Duration;

use datc::core::{DatcConfig, TraceLevel};
use datc::engine::{FleetOutput, FleetRunner};
use datc::rx::online::OnlineReconSelect;
use datc::rx::reconstruct::{Reconstructor, ThresholdTrackReconstructor};
use datc::signal::generator::semg_fleet;
use datc::wire::udp::{udp_stream_fleet, UdpPacing, UdpSessionSender, UdpTelemetryHub};
use datc::wire::{
    capture_store, stream_fleet, HubConfig, HubSession, MemorySink, SessionRxConfig, SessionSender,
    SessionTable, SinkFactory, TelemetryHub,
};

const CHANNELS: usize = 3;
const DEAD_TIME: f64 = 25e-6;

/// A hub config running the paper's D-ATC receiver on every channel,
/// with unbounded traces (test sessions are seconds long).
fn threshold_track_config() -> HubConfig {
    HubConfig {
        session: SessionRxConfig {
            recon: OnlineReconSelect::paper_threshold_track(),
            force_window: None,
            ..SessionRxConfig::default()
        },
        ..HubConfig::default()
    }
}

fn encode_fleet(seed: u64) -> FleetOutput {
    let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
    let signals = semg_fleet(CHANNELS, 2.0, seed);
    FleetRunner::new(config, CHANNELS)
        .expect("valid fleet")
        .encode(&signals)
}

/// Asserts a session's streamed threshold track equals the batch
/// reconstruction of the same fleet, channel for channel, bit for bit.
fn assert_threshold_track_bit_exact(s: &HubSession, fleet: &FleetOutput, transport: &str) {
    let header = s.report.header.expect("hello processed");
    let merged = fleet.merge_aer(DEAD_TIME);
    let demuxed = datc::uwb::aer::demux(
        &merged.merged,
        CHANNELS,
        header.tick_rate_hz,
        header.duration_s,
    );
    for (ch, stream) in demuxed.iter().enumerate() {
        let batch = ThresholdTrackReconstructor::paper().reconstruct(stream, 100.0);
        assert_eq!(
            s.report.force_tail[ch],
            batch.samples(),
            "{transport} session {} channel {ch}",
            s.session_id
        );
    }
}

#[test]
fn udp_hub_serves_sessions_with_bit_exact_threshold_track() {
    const N_SESSIONS: u32 = 3;
    // The kernel may legally drop loopback datagrams under CI load
    // (SO_RCVBUF overflow), so this gate asserts invariants that hold
    // with or without loss: exact accounting, and streamed
    // reconstruction bit-identical to the batch reconstruction of the
    // events that were actually decoded (captured by a sink).
    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let hub = UdpTelemetryHub::bind_with(
        "127.0.0.1:0",
        threshold_track_config(),
        SessionTable::shared(),
        Some(factory),
    )
    .expect("bind");
    let addr = hub.local_addr();

    let handles: Vec<_> = (0..N_SESSIONS)
        .map(|id| {
            std::thread::spawn(move || {
                let fleet = encode_fleet(2000 + u64::from(id) * 13);
                let sent = fleet.merge_aer(DEAD_TIME).merged.len() as u64;
                let client = udp_stream_fleet(addr, id, &fleet, DEAD_TIME).expect("stream");
                assert_eq!(client.events_sent, sent);
                (id, sent)
            })
        })
        .collect();
    let sent: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), N_SESSIONS as usize, "every session lands");

    let captures = store.lock().unwrap();
    for (id, events_sent) in &sent {
        let s = sessions
            .iter()
            .find(|s| s.session_id == *id)
            .expect("session in table");
        let cap = captures
            .iter()
            .find(|c| c.session_id() == *id)
            .expect("capture per session");
        // Books: everything sent is either decoded or accounted lost
        // (once the BYE made the totals known).
        if s.report.stats.closed {
            assert_eq!(
                s.report.stats.events_decoded + s.report.stats.events_lost,
                *events_sent,
                "session {id} accounting"
            );
        }
        assert_eq!(cap.events.len() as u64, s.report.stats.events_decoded);
        // Bit-exactness on whatever survived the transport.
        let header = s.report.header.expect("hello processed");
        let demuxed = datc::uwb::aer::demux(
            &cap.events,
            CHANNELS,
            header.tick_rate_hz,
            header.duration_s,
        );
        for (ch, stream) in demuxed.iter().enumerate() {
            let batch = ThresholdTrackReconstructor::paper().reconstruct(stream, 100.0);
            assert_eq!(
                s.report.force_tail[ch],
                batch.samples(),
                "udp session {id} channel {ch}"
            );
        }
    }
}

#[test]
fn motor_workload_over_udp_matches_batch_reconstruction_bit_exactly() {
    // The PR-6 acceptance path: a physiological workload scenario
    // (Fuglevand motor pool, ballistic bursts — the burstiest traffic
    // the signal layer produces) encoded by the FleetRunner, streamed
    // over the UDP loopback in DATA-V2 frames, reconstructed by the
    // hybrid receiver in auto-rate0 mode. The calibration window is
    // longer than the session, so the receiver falls back to the
    // deferred exact-mean path and must be bit-identical to the batch
    // `HybridReconstructor` over whatever events survived the
    // transport.
    use datc::rx::reconstruct::HybridReconstructor;
    use datc::signal::motor::{motor_fleet, WorkloadScenario};

    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let config = HubConfig {
        session: SessionRxConfig {
            recon: OnlineReconSelect::paper_hybrid_auto_rate0(10.0),
            force_window: None,
            ..SessionRxConfig::default()
        },
        ..HubConfig::default()
    };
    let hub =
        UdpTelemetryHub::bind_with("127.0.0.1:0", config, SessionTable::shared(), Some(factory))
            .expect("bind");

    let signals = motor_fleet(WorkloadScenario::ballistic(), CHANNELS, 2.0, 600);
    let fleet = FleetRunner::new(
        DatcConfig::paper().with_trace_level(TraceLevel::Events),
        CHANNELS,
    )
    .expect("valid fleet")
    .encode(&signals);
    let sent = fleet.merge_aer(DEAD_TIME).merged.len() as u64;
    assert!(sent > 0, "ballistic bursts must produce events");
    let client = udp_stream_fleet(hub.local_addr(), 42, &fleet, DEAD_TIME).expect("stream");
    assert_eq!(client.events_sent, sent);

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1);
    let s = &sessions[0];
    if s.report.stats.closed {
        assert_eq!(
            s.report.stats.events_decoded + s.report.stats.events_lost,
            sent,
            "accounting"
        );
    }

    let captures = store.lock().unwrap();
    let cap = captures
        .iter()
        .find(|c| c.session_id() == 42)
        .expect("capture");
    assert_eq!(cap.events.len() as u64, s.report.stats.events_decoded);
    let header = s.report.header.expect("hello processed");
    let demuxed = datc::uwb::aer::demux(
        &cap.events,
        CHANNELS,
        header.tick_rate_hz,
        header.duration_s,
    );
    for (ch, stream) in demuxed.iter().enumerate() {
        let batch = HybridReconstructor::paper().reconstruct(stream, 100.0);
        assert_eq!(
            s.report.force_tail[ch],
            batch.samples(),
            "motor workload channel {ch}: streamed auto-rate0 hybrid (deferred \
             fallback) vs batch hybrid"
        );
    }
}

#[test]
fn motor_workload_live_auto_rate0_session_closes_its_books() {
    // Same physiological traffic, but the calibration window (0.5 s)
    // fits inside the 2 s session: the receiver pins rate₀ from the
    // first half-second of bursty traffic and streams the rest live.
    // Trace values on this path are covered by datc-rx's unit tests;
    // end to end we assert the session accounting and that the live
    // path emitted a full, finite trace.
    use datc::signal::motor::{motor_fleet, WorkloadScenario};

    let config = HubConfig {
        session: SessionRxConfig {
            recon: OnlineReconSelect::paper_hybrid_auto_rate0(0.5),
            force_window: None,
            ..SessionRxConfig::default()
        },
        ..HubConfig::default()
    };
    let hub = UdpTelemetryHub::bind("127.0.0.1:0", config).expect("bind");

    let signals = motor_fleet(WorkloadScenario::ballistic(), CHANNELS, 2.0, 601);
    let fleet = FleetRunner::new(
        DatcConfig::paper().with_trace_level(TraceLevel::Events),
        CHANNELS,
    )
    .expect("valid fleet")
    .encode(&signals);
    let sent = fleet.merge_aer(DEAD_TIME).merged.len() as u64;
    let client = udp_stream_fleet(hub.local_addr(), 7, &fleet, DEAD_TIME).expect("stream");
    assert_eq!(client.events_sent, sent);

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1);
    let s = &sessions[0];
    if s.report.stats.closed {
        assert_eq!(
            s.report.stats.events_decoded + s.report.stats.events_lost,
            sent,
            "accounting"
        );
    }
    for (ch, trace) in s.report.force_tail.iter().enumerate() {
        assert_eq!(trace.len(), s.report.force_emitted[ch], "channel {ch}");
        assert!(
            trace.iter().all(|v| v.is_finite()),
            "channel {ch} trace must be finite"
        );
    }
}

#[test]
fn tcp_hub_threshold_track_matches_batch_bit_exactly() {
    let hub = TelemetryHub::bind("127.0.0.1:0", threshold_track_config()).expect("bind");
    let fleet = encode_fleet(777);
    let sent = fleet.merge_aer(DEAD_TIME).merged.len() as u64;
    let client = stream_fleet(hub.local_addr(), 9, &fleet, DEAD_TIME).expect("stream");
    assert_eq!(client.events_sent, sent);

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].report.stats.events_lost, 0);
    assert_threshold_track_bit_exact(&sessions[0], &fleet, "tcp");
}

/// `needle` must be a subsequence of `haystack` — the exactly-once
/// check: no event duplicated, none out of order.
fn is_subsequence(
    needle: &[datc::uwb::aer::AddressedEvent],
    haystack: &[datc::uwb::aer::AddressedEvent],
) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

#[test]
fn tcp_shutdown_under_load_drains_every_event_exactly_once_to_the_sink() {
    const N_SESSIONS: u32 = 3;
    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let hub = TelemetryHub::bind_with(
        "127.0.0.1:0",
        threshold_track_config(),
        SessionTable::shared(),
        Some(factory),
    )
    .expect("bind");
    let addr = hub.local_addr();

    // Establish every connection first (HELLO on the wire), then stream
    // the data from worker threads while the hub is being shut down:
    // established connections must still be served to completion.
    let prepared: Vec<_> = (0..N_SESSIONS)
        .map(|id| {
            let fleet = encode_fleet(3000 + u64::from(id) * 7);
            let merged = fleet.merge_aer(DEAD_TIME).merged;
            let header = datc::wire::SessionHeader::new(
                id,
                CHANNELS as u16,
                fleet.channels[0].events.tick_rate_hz(),
                fleet.channels[0].events.duration_s(),
            );
            let tx = SessionSender::connect(addr, header).expect("connect");
            (tx, merged)
        })
        .collect();

    let senders: Vec<_> = prepared
        .into_iter()
        .map(|(mut tx, merged)| {
            std::thread::spawn(move || {
                // Send in small runs with pauses so shutdown lands
                // mid-session.
                for chunk in merged.chunks(64) {
                    tx.send_events(chunk).expect("send");
                    std::thread::sleep(Duration::from_millis(1));
                }
                tx.finish().expect("finish");
                merged
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(5));
    let sessions = hub.shutdown(); // must not deadlock, must serve all
    let sent: Vec<_> = senders.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(sessions.len(), N_SESSIONS as usize);
    let captures = store.lock().unwrap();
    assert_eq!(captures.len(), N_SESSIONS as usize);
    for s in &sessions {
        let cap = captures
            .iter()
            .find(|c| c.session_id() == s.session_id)
            .expect("capture per session");
        // TCP serves established connections to completion: every sent
        // event is decoded and reaches the sink exactly once, in order.
        let expected = &sent[s.session_id as usize];
        assert_eq!(
            cap.events.len() as u64,
            s.report.stats.events_decoded,
            "sink event count == decoded count, session {}",
            s.session_id
        );
        assert_eq!(
            &cap.events, expected,
            "exactly the sent stream, session {}",
            s.session_id
        );
        assert_eq!(s.report.stats.events_lost, 0);
        // the sink's force traces carry every emitted sample
        for (ch, trace) in cap.force.iter().enumerate() {
            assert_eq!(trace.len(), s.report.force_emitted[ch]);
        }
    }
}

#[test]
fn udp_sender_pacing_is_configurable_end_to_end() {
    // The sender's pacing (burst size + inter-burst pause) is a knob
    // now: a gentle 4-datagram / 500 µs cadence and an unpaced
    // firehose must both deliver a loopback session losslessly, and
    // the gentle cadence must observably bound the send rate.
    let hub = UdpTelemetryHub::bind("127.0.0.1:0", threshold_track_config()).expect("bind");
    let addr = hub.local_addr();
    let fleet = encode_fleet(9000);
    let merged = fleet.merge_aer(DEAD_TIME).merged;

    let gentle = UdpPacing {
        burst: 4,
        inter_burst: Duration::from_micros(500),
    };
    assert!(gentle.datagrams_per_s() < UdpPacing::default().datagrams_per_s());
    let firehose = UdpPacing {
        burst: 1,
        inter_burst: Duration::ZERO,
    };
    assert_eq!(firehose.datagrams_per_s(), f64::INFINITY);

    for (id, pacing) in [(1u32, gentle), (2, firehose)] {
        let header = datc::wire::SessionHeader::new(
            id,
            CHANNELS as u16,
            fleet.channels[0].events.tick_rate_hz(),
            fleet.channels[0].events.duration_s(),
        );
        let start = std::time::Instant::now();
        let mut tx = UdpSessionSender::connect_with(addr, header, pacing).expect("connect");
        assert_eq!(tx.pacing(), pacing);
        tx.send_events(&merged).expect("send");
        let client = tx.finish().expect("finish");
        let elapsed = start.elapsed();
        assert_eq!(client.events_sent, merged.len() as u64);
        if pacing == gentle {
            // frames_sent datagrams at ≤ burst/pause rate: the session
            // cannot complete faster than the pacing floor allows
            let min_pauses = (client.frames_sent / u64::from(pacing.burst)).saturating_sub(1);
            assert!(
                elapsed >= pacing.inter_burst * min_pauses as u32,
                "paced send finished too fast: {elapsed:?} for {} frames",
                client.frames_sent
            );
        }
    }

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 2);
    for s in &sessions {
        // loopback with either pacing: everything sent is decoded or —
        // once the BYE closed the books — exactly accounted as lost
        // (the kernel may drop datagrams under CI load)
        if s.report.stats.closed {
            assert_eq!(
                s.report.stats.events_decoded + s.report.stats.events_lost,
                merged.len() as u64,
                "session {} accounting",
                s.session_id
            );
        }
    }
}

#[test]
fn udp_shutdown_under_load_drains_every_decoded_event_exactly_once() {
    const N_SESSIONS: u32 = 2;
    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let hub = UdpTelemetryHub::bind_with(
        "127.0.0.1:0",
        threshold_track_config(),
        SessionTable::shared(),
        Some(factory),
    )
    .expect("bind");
    let addr = hub.local_addr();

    let senders: Vec<_> = (0..N_SESSIONS)
        .map(|id| {
            std::thread::spawn(move || {
                let fleet = encode_fleet(4000 + u64::from(id) * 11);
                let merged = fleet.merge_aer(DEAD_TIME).merged;
                let header = datc::wire::SessionHeader::new(
                    id,
                    CHANNELS as u16,
                    fleet.channels[0].events.tick_rate_hz(),
                    fleet.channels[0].events.duration_s(),
                );
                let mut tx = UdpSessionSender::connect(addr, header).expect("connect");
                tx.send_events(&merged).expect("send");
                tx.finish().expect("finish");
                merged
            })
        })
        .collect();

    // Shut down while datagrams are (possibly still) in flight: the
    // drain loop keeps decoding until the socket runs dry.
    std::thread::sleep(Duration::from_millis(5));
    let sessions = hub.shutdown(); // must not deadlock
    let sent: Vec<_> = senders.into_iter().map(|h| h.join().unwrap()).collect();

    let captures = store.lock().unwrap();
    assert_eq!(captures.len(), sessions.len());
    for s in &sessions {
        let cap = captures
            .iter()
            .find(|c| c.session_id() == s.session_id)
            .expect("capture per session");
        // Datagrams sent after the drain window may be gone — but what
        // was decoded reached the sink exactly once, in release order.
        assert_eq!(
            cap.events.len() as u64,
            s.report.stats.events_decoded,
            "sink event count == decoded count, session {}",
            s.session_id
        );
        let expected = &sent[s.session_id as usize];
        assert!(
            is_subsequence(&cap.events, expected),
            "no duplicate or reordered delivery, session {}",
            s.session_id
        );
        for (ch, trace) in cap.force.iter().enumerate() {
            assert_eq!(trace.len(), s.report.force_emitted[ch]);
        }
    }
}
