//! Hub-level observability gates: per-session wire books must sum to
//! the hub aggregates under chaos, the migrated `HubHealth` must read
//! bit-identically through the typed view and the registry, and a real
//! instrumented hub must render a non-empty, well-formed metrics
//! snapshot (the CI metrics smoke).

use datc::core::{DatcConfig, TraceLevel};
use datc::engine::FleetRunner;
use datc::obs::{render_json, render_prometheus, MetricValue, Registry};
use datc::signal::generator::semg_fleet;
use datc::wire::obs;
use datc::wire::udp::{udp_stream_fleet, UdpTelemetryHub};
use datc::wire::{
    ChaosLink, ChaosProfile, HubConfig, RetryPolicy, SessionSender, TelemetryHub, WireStats,
};

const CHANNELS: usize = 3;
const DEAD_TIME: f64 = 25e-6;
const CHUNK: usize = 8;

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.snapshot()
        .into_iter()
        .find_map(|(n, _, v)| match (n == name, v) {
            (true, MetricValue::Counter(c)) => Some(c),
            _ => None,
        })
        .unwrap_or_else(|| panic!("{name} registered"))
}

/// Satellite gate: drive several chaos sessions through one TCP hub and
/// assert the per-session `WireStats` in each `SessionReport` sum
/// exactly to `SessionTable::wire_totals()` and to the `HubHealth`
/// roll-ups — and that `HubHealth` reads bit-identically through the
/// registry counters backing it.
#[test]
#[cfg_attr(not(feature = "metrics"), ignore = "asserts live registry contents")]
fn chaos_session_stats_sum_to_hub_totals_and_health() {
    let hub = TelemetryHub::bind("127.0.0.1:0", HubConfig::default()).expect("bind loopback");
    let table = hub.session_table();
    let addr = hub.local_addr();

    let profiles = [
        ChaosProfile::ideal(),
        ChaosProfile::lossy(),
        ChaosProfile::bursty(),
        ChaosProfile::lossy(),
    ];
    for (id, profile) in profiles.iter().enumerate() {
        let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
        let signals = semg_fleet(CHANNELS, 1.5, 9000 + id as u64 * 31);
        let fleet = FleetRunner::new(config, CHANNELS)
            .expect("valid fleet")
            .encode(&signals);
        let merged = fleet.merge_aer(DEAD_TIME).merged;
        let header = datc::wire::SessionHeader::new(
            id as u32,
            CHANNELS as u16,
            fleet.channels[0].events.tick_rate_hz(),
            fleet.channels[0].events.duration_s(),
        );
        let mut tx = SessionSender::connect_with(addr, header, RetryPolicy::none())
            .expect("connect")
            .with_chaos(ChaosLink::new(0xB0B0 + id as u64, *profile));
        for chunk in merged.chunks(CHUNK) {
            tx.send_events(chunk).expect("send under chaos");
        }
        tx.finish().expect("finish under chaos");
    }

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), profiles.len(), "every session lands");

    // Per-session books sum exactly to the table aggregate.
    let mut manual = WireStats::zero();
    for s in &sessions {
        manual.merge(&s.report.stats);
    }
    assert_eq!(table.wire_totals(), manual, "sessions sum to hub totals");
    assert!(manual.events_decoded > 0, "traffic actually flowed");

    // ... and to the HubHealth roll-ups.
    let health = table.health();
    assert_eq!(health.sessions_started, profiles.len() as u64);
    assert_eq!(health.sessions_finished, profiles.len() as u64);
    assert_eq!(health.in_flight, 0);
    assert_eq!(health.events_decoded, manual.events_decoded);
    assert_eq!(health.events_lost, manual.events_lost);
    assert_eq!(health.foreign_frames, manual.foreign_frames);
    assert_eq!(
        health.decode_errors,
        manual.crc_failures + manual.malformed_frames + manual.orphan_frames
    );

    // The registry counters ARE the health tallies (same atomics), so
    // the typed view and the exporter view agree bit for bit.
    let reg = table.registry();
    assert_eq!(
        counter(reg, obs::HUB_SESSIONS_STARTED),
        health.sessions_started
    );
    assert_eq!(
        counter(reg, obs::HUB_SESSIONS_FINISHED),
        health.sessions_finished
    );
    assert_eq!(counter(reg, obs::HUB_EVENTS_DECODED), health.events_decoded);
    assert_eq!(counter(reg, obs::HUB_EVENTS_LOST), health.events_lost);
    assert_eq!(counter(reg, obs::HUB_DECODE_ERRORS), health.decode_errors);

    // Every per-session series was retired at finish: lifetime totals
    // live on in the datc_hub_* roll-ups, the registry stays bounded.
    for (name, _, _) in reg.snapshot() {
        assert!(
            !name.starts_with("datc_rx_") && !name.starts_with("datc_session_"),
            "per-session series {name} must be retired after finish"
        );
    }
}

/// The CI metrics smoke: a real instrumented UDP hub end-to-end, then
/// assert the rendered snapshot is non-empty and well-formed in both
/// exporter formats.
#[test]
#[cfg_attr(not(feature = "metrics"), ignore = "asserts live registry contents")]
fn udp_hub_renders_well_formed_metrics_snapshot() {
    let hub =
        UdpTelemetryHub::bind("127.0.0.1:0", HubConfig::default()).expect("bind loopback udp");
    let addr = hub.local_addr();
    let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
    let signals = semg_fleet(CHANNELS, 1.5, 777);
    let fleet = FleetRunner::new(config, CHANNELS)
        .expect("valid fleet")
        .encode(&signals);
    udp_stream_fleet(addr, 1, &fleet, DEAD_TIME).expect("stream");

    let registry = hub.registry();
    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1);

    // Prometheus text: non-empty, every line either a `# TYPE` comment
    // or `name[{labels}] value` with a parseable value.
    let prom = render_prometheus(&registry);
    assert!(!prom.is_empty(), "snapshot must not be empty");
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(rest.starts_with("TYPE "), "unknown comment: {line}");
            continue;
        }
        let (ident, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line needs an identifier and a value: {line:?}"));
        assert!(!ident.is_empty(), "empty identifier: {line:?}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable value {value:?} in {line:?}"
        );
    }
    // The hub roll-ups made it out, with the finished session counted.
    assert!(prom.contains(&format!("{} 1\n", obs::HUB_SESSIONS_FINISHED)));
    assert!(prom.contains(obs::HUB_EVENTS_DECODED));
    assert!(prom.contains(obs::HUB_SESSIONS_IN_FLIGHT));

    // JSON: one flat object keyed by series identifier.
    let json = render_json(&registry);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains(&format!("\"{}\": 1", obs::HUB_SESSIONS_FINISHED)));

    // And the health totals agree with the decode books, end to end.
    let health = registry_health(&registry);
    assert_eq!(health, sessions[0].report.stats.events_decoded);
}

/// Reads the decoded-events roll-up back out of a registry snapshot.
fn registry_health(reg: &Registry) -> u64 {
    counter(reg, obs::HUB_EVENTS_DECODED)
}
