//! Cross-crate integration tests: the full transmitter → link → receiver
//! pipeline assembled from the unified `SpikeEncoder` / `Link` API.

use datc::core::atc::AtcEncoder;
use datc::core::{DatcConfig, DatcEncoder, EncoderBank, SpikeEncoder, TraceLevel};
use datc::rx::pipeline::Link;
use datc::rx::{HybridReconstructor, RateReconstructor, Reconstructor};
use datc::signal::dataset::{Dataset, DatasetConfig};
use datc::signal::envelope::arv_envelope;
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc::uwb::aer::{demux, merge_encoder_bank};
use datc::uwb::channel::SymbolChannel;
use datc::uwb::energy::TxEnergyModel;

fn test_signal(gain: f64, seed: u64) -> datc::signal::Signal {
    let fs = 2500.0;
    let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
    SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, seed)
        .to_scaled(gain)
        .to_rectified()
}

#[test]
fn full_datc_pipeline_recovers_force() {
    let semg = test_signal(0.5, 1);
    let arv = arv_envelope(&semg, 0.25);

    let link = Link::builder()
        .encoder(DatcEncoder::new(DatcConfig::paper()))
        .channel(SymbolChannel::ideal())
        .reconstructor(HybridReconstructor::paper())
        .build();
    let (run, pct) = link.run_scored(&semg, &arv, 0.3);
    assert!(pct > 90.0, "end-to-end correlation {pct:.1}");
    assert_eq!(run.transmission.transport.dropped, 0);
}

#[test]
fn lossy_link_degrades_gracefully() {
    let semg = test_signal(0.5, 2);
    let arv = arv_envelope(&semg, 0.25);
    let encoder = DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events));

    let mut last = 101.0f64;
    let mut scores = Vec::new();
    for p_miss in [0.0, 0.2, 0.6] {
        let link = Link::builder()
            .encoder(encoder.clone())
            .channel(SymbolChannel::new(p_miss, 0.0))
            .seed(5)
            .reconstructor(HybridReconstructor::paper())
            .build();
        let (_, pct) = link.run_scored(&semg, &arv, 0.3);
        scores.push(pct);
        last = last.min(pct);
    }
    // mild loss barely hurts; heavy loss hurts but never catastrophically
    assert!(
        scores[1] > scores[0] - 6.0,
        "20% loss dropped too much: {scores:?}"
    );
    assert!(last > 55.0, "60% loss collapsed: {scores:?}");
}

#[test]
fn symbolized_codes_roundtrip_through_patterns() {
    use datc::uwb::modulator::symbolize_events;
    let semg = test_signal(0.7, 3);
    let tx = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
    let patterns = symbolize_events(&tx.events, 4);
    assert_eq!(patterns.len(), tx.events.len());
    for (ev, pat) in tx.events.iter().zip(&patterns) {
        assert_eq!(
            pat.decode_code(),
            ev.vth_code,
            "code corrupted in serialisation"
        );
    }
}

#[test]
fn multichannel_bank_aer_preserves_per_channel_force() {
    let fs = 2500.0;
    let force_a = ForceProfile::mvc_protocol().samples(fs, 20.0);
    let force_b: Vec<f64> = force_a.iter().rev().copied().collect();
    let gen = SemgGenerator::new(SemgModel::modulated_noise(), fs);

    let sig_a = gen.generate(&force_a, 10).to_scaled(0.5).to_rectified();
    let sig_b = gen.generate(&force_b, 11).to_scaled(0.5).to_rectified();

    let bank = EncoderBank::replicate(
        DatcEncoder::new(DatcConfig::paper().with_trace_level(TraceLevel::Events)),
        2,
    );
    let merged = merge_encoder_bank(&bank, &[sig_a.clone(), sig_b.clone()], 5e-6);
    let streams = demux(&merged.merged, 2, 2000.0, 20.0);

    let recon = HybridReconstructor::paper();
    let arv_a = arv_envelope(&sig_a, 0.25);
    let arv_b = arv_envelope(&sig_b, 0.25);
    let score_a = datc::rx::evaluate(&recon.reconstruct(&streams[0], 100.0), &arv_a, 0.3).unwrap();
    let score_b = datc::rx::evaluate(&recon.reconstruct(&streams[1], 100.0), &arv_b, 0.3).unwrap();
    assert!(score_a.percent > 85.0, "channel A {:.1}", score_a.percent);
    assert!(score_b.percent > 85.0, "channel B {:.1}", score_b.percent);
}

#[test]
fn dataset_patterns_encode_deterministically_across_crates() {
    let ds = Dataset::new(DatasetConfig::small());
    let p = ds.pattern(7);
    let a = DatcEncoder::new(DatcConfig::paper()).encode(&p.rectified());
    let b = DatcEncoder::new(DatcConfig::paper()).encode(&p.rectified());
    assert_eq!(a.events, b.events);
    assert_eq!(a.vth_code_trace, b.vth_code_trace);
}

#[test]
fn atc_and_datc_disagree_most_on_weak_signals() {
    // the architectural claim, end to end: the weaker the signal, the
    // larger D-ATC's advantage — both schemes running through the same
    // Link builder, differing only in the encoder/reconstructor slots.
    let mut gaps = Vec::new();
    for (gain, seed) in [(0.15, 21u64), (0.8, 22)] {
        let semg = test_signal(gain, seed);
        let arv = arv_envelope(&semg, 0.25);
        let atc_link = Link::builder()
            .encoder(AtcEncoder::new(0.3))
            .reconstructor(RateReconstructor::default())
            .build();
        let datc_link = Link::builder()
            .encoder(DatcEncoder::new(DatcConfig::paper()))
            .reconstructor(HybridReconstructor::paper())
            .build();
        let (_, r_atc) = atc_link.run_scored(&semg, &arv, 0.3);
        let (_, r_datc) = datc_link.run_scored(&semg, &arv, 0.3);
        gaps.push(r_datc - r_atc);
    }
    assert!(
        gaps[0] > gaps[1],
        "weak-signal advantage {:.1} should exceed strong-signal {:.1}",
        gaps[0],
        gaps[1]
    );
    assert!(gaps[0] > 3.0, "weak-signal advantage only {:.1}", gaps[0]);
}

#[test]
fn packet_baseline_composes_and_costs_more_symbols() {
    use datc::uwb::packet::PacketTx;
    let semg = test_signal(0.5, 30);
    let arv = arv_envelope(&semg, 0.25);

    let packet_link = Link::builder()
        .encoder(PacketTx::baseline())
        .energy_model(TxEnergyModel::paper_class())
        .reconstructor(RateReconstructor::default())
        .build();
    let datc_link = Link::builder()
        .encoder(DatcEncoder::new(
            DatcConfig::paper().with_trace_level(TraceLevel::Events),
        ))
        .energy_model(TxEnergyModel::paper_class())
        .reconstructor(HybridReconstructor::paper())
        .build();

    let packet_run = packet_link.run(&semg);
    let (datc_run, datc_pct) = datc_link.run_scored(&semg, &arv, 0.3);

    // the paper's headline economy: 600 000 packet symbols vs tens of
    // thousands for D-ATC, at an order of magnitude more TX power
    assert_eq!(packet_run.transmission.symbols_on_air, 600_000);
    assert!(datc_run.transmission.symbols_on_air < 60_000);
    let p_packet = packet_run.transmission.energy.unwrap().average_power_w;
    let p_datc = datc_run.transmission.energy.unwrap().average_power_w;
    assert!(
        p_packet > 5.0 * p_datc,
        "packet {p_packet} vs datc {p_datc}"
    );
    assert!(datc_pct > 85.0, "D-ATC correlation {datc_pct:.1}");
}
