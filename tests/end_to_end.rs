//! Cross-crate integration tests: the full transmitter → link → receiver
//! pipeline assembled from the public APIs.

use datc::core::atc::AtcEncoder;
use datc::core::{DatcConfig, DatcEncoder};
use datc::rx::metrics::evaluate;
use datc::rx::{HybridReconstructor, RateReconstructor, Reconstructor};
use datc::signal::dataset::{Dataset, DatasetConfig};
use datc::signal::envelope::arv_envelope;
use datc::signal::generator::{ForceProfile, SemgGenerator, SemgModel};
use datc::uwb::aer::{demux, merge_channels};
use datc::uwb::channel::SymbolChannel;
use datc::uwb::link::EventLink;
use datc::uwb::modulator::symbolize_events;

fn test_signal(gain: f64, seed: u64) -> datc::signal::Signal {
    let fs = 2500.0;
    let force = ForceProfile::mvc_protocol().samples(fs, 20.0);
    SemgGenerator::new(SemgModel::modulated_noise(), fs)
        .generate(&force, seed)
        .to_scaled(gain)
        .to_rectified()
}

#[test]
fn full_datc_pipeline_recovers_force() {
    let semg = test_signal(0.5, 1);
    let arv = arv_envelope(&semg, 0.25);

    let tx = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
    let link = EventLink::new(SymbolChannel::ideal(), 4);
    let rx_stream = link.transport(&tx.events, 0).received;
    let recon = HybridReconstructor::paper().reconstruct(&rx_stream, 100.0);
    let score = evaluate(&recon, &arv, 0.3).expect("long signals");
    assert!(score.percent > 90.0, "end-to-end correlation {:.1}", score.percent);
}

#[test]
fn lossy_link_degrades_gracefully() {
    let semg = test_signal(0.5, 2);
    let arv = arv_envelope(&semg, 0.25);
    let tx = DatcEncoder::new(DatcConfig::paper()).encode(&semg);

    let mut last = 101.0f64;
    let mut scores = Vec::new();
    for p_miss in [0.0, 0.2, 0.6] {
        let link = EventLink::new(SymbolChannel::new(p_miss, 0.0), 4);
        let rx_stream = link.transport(&tx.events, 5).received;
        let recon = HybridReconstructor::paper().reconstruct(&rx_stream, 100.0);
        let pct = evaluate(&recon, &arv, 0.3).map(|r| r.percent).unwrap_or(0.0);
        scores.push(pct);
        last = last.min(pct);
    }
    // mild loss barely hurts; heavy loss hurts but never catastrophically
    assert!(scores[1] > scores[0] - 6.0, "20% loss dropped too much: {scores:?}");
    assert!(last > 55.0, "60% loss collapsed: {scores:?}");
}

#[test]
fn symbolized_codes_roundtrip_through_patterns() {
    let semg = test_signal(0.7, 3);
    let tx = DatcEncoder::new(DatcConfig::paper()).encode(&semg);
    let patterns = symbolize_events(&tx.events, 4);
    assert_eq!(patterns.len(), tx.events.len());
    for (ev, pat) in tx.events.iter().zip(&patterns) {
        assert_eq!(pat.decode_code(), ev.vth_code, "code corrupted in serialisation");
    }
}

#[test]
fn multichannel_aer_preserves_per_channel_force() {
    let fs = 2500.0;
    let force_a = ForceProfile::mvc_protocol().samples(fs, 20.0);
    let force_b: Vec<f64> = force_a.iter().rev().copied().collect();
    let gen = SemgGenerator::new(SemgModel::modulated_noise(), fs);
    let enc = DatcEncoder::new(DatcConfig::paper());

    let sig_a = gen.generate(&force_a, 10).to_scaled(0.5).to_rectified();
    let sig_b = gen.generate(&force_b, 11).to_scaled(0.5).to_rectified();
    let ev_a = enc.encode(&sig_a).events;
    let ev_b = enc.encode(&sig_b).events;

    let merged = merge_channels(&[ev_a, ev_b], 5e-6);
    let streams = demux(&merged.merged, 2, 2000.0, 20.0);

    let recon = HybridReconstructor::paper();
    let arv_a = arv_envelope(&sig_a, 0.25);
    let arv_b = arv_envelope(&sig_b, 0.25);
    let score_a = evaluate(&recon.reconstruct(&streams[0], 100.0), &arv_a, 0.3).unwrap();
    let score_b = evaluate(&recon.reconstruct(&streams[1], 100.0), &arv_b, 0.3).unwrap();
    assert!(score_a.percent > 85.0, "channel A {:.1}", score_a.percent);
    assert!(score_b.percent > 85.0, "channel B {:.1}", score_b.percent);
}

#[test]
fn dataset_patterns_encode_deterministically_across_crates() {
    let ds = Dataset::new(DatasetConfig::small());
    let p = ds.pattern(7);
    let a = DatcEncoder::new(DatcConfig::paper()).encode(&p.rectified());
    let b = DatcEncoder::new(DatcConfig::paper()).encode(&p.rectified());
    assert_eq!(a.events, b.events);
    assert_eq!(a.vth_code_trace, b.vth_code_trace);
}

#[test]
fn atc_and_datc_disagree_most_on_weak_signals() {
    // the architectural claim, end to end: the weaker the signal, the
    // larger D-ATC's advantage
    let mut gaps = Vec::new();
    for (gain, seed) in [(0.15, 21u64), (0.8, 22)] {
        let semg = test_signal(gain, seed);
        let arv = arv_envelope(&semg, 0.25);
        let atc = AtcEncoder::new(0.3).encode(&semg);
        let datc = DatcEncoder::new(DatcConfig::paper()).encode(&semg).events;
        let r_atc = evaluate(
            &RateReconstructor::default().reconstruct(&atc, 100.0),
            &arv,
            0.3,
        )
        .map(|r| r.percent)
        .unwrap_or(0.0);
        let r_datc = evaluate(
            &HybridReconstructor::paper().reconstruct(&datc, 100.0),
            &arv,
            0.3,
        )
        .map(|r| r.percent)
        .unwrap_or(0.0);
        gaps.push(r_datc - r_atc);
    }
    assert!(
        gaps[0] > gaps[1],
        "weak-signal advantage {:.1} should exceed strong-signal {:.1}",
        gaps[0],
        gaps[1]
    );
    assert!(gaps[0] > 3.0, "weak-signal advantage only {:.1}", gaps[0]);
}
