//! Gateway loopback smoke test (the CI gate for the wire subsystem):
//! spawn a `TelemetryHub` on an ephemeral loopback port, push N
//! concurrent fleet-encoded sensor sessions through it, and assert zero
//! decode loss plus bit-exact agreement with the batch receive path.

use datc::core::{DatcConfig, EventStream, TraceLevel};
use datc::engine::FleetRunner;
use datc::rx::windowing::sliding_rate;
use datc::signal::generator::semg_fleet;
use datc::wire::{stream_fleet, HubConfig, TelemetryHub};

#[test]
fn gateway_loopback_serves_n_sessions_with_zero_loss() {
    const N_SESSIONS: u32 = 6;
    const CHANNELS: usize = 4;
    const DEAD_TIME: f64 = 25e-6;

    let hub = TelemetryHub::bind("127.0.0.1:0", HubConfig::default()).expect("bind loopback");
    let addr = hub.local_addr();

    // N concurrent sensors, each a fleet encode of its own recording.
    let handles: Vec<_> = (0..N_SESSIONS)
        .map(|id| {
            std::thread::spawn(move || {
                let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
                let signals = semg_fleet(CHANNELS, 2.0, 1000 + u64::from(id) * 17);
                let fleet = FleetRunner::new(config, CHANNELS)
                    .expect("valid fleet")
                    .encode(&signals);
                let sent = fleet.merge_aer(DEAD_TIME).merged.len() as u64;
                let client = stream_fleet(addr, id, &fleet, DEAD_TIME).expect("stream session");
                assert_eq!(client.events_sent, sent);
                (id, fleet, sent)
            })
        })
        .collect();
    let sent: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), N_SESSIONS as usize, "every session lands");

    for (id, fleet, events_sent) in &sent {
        let s = sessions
            .iter()
            .find(|s| s.session_id == *id)
            .expect("session in table");
        // zero decode loss, clean books
        assert_eq!(s.report.stats.events_decoded, *events_sent, "session {id}");
        assert_eq!(s.report.stats.events_lost, 0);
        assert_eq!(s.report.stats.crc_failures, 0);
        assert_eq!(s.report.stats.duplicate_frames, 0);
        assert!(s.report.stats.closed, "BYE processed");
        assert!(s.report.force_is_finite());

        // the hub's streaming per-channel reconstruction is bit-exact
        // with batch sliding-rate over the locally merged+demuxed stream
        let header = s.report.header.expect("hello processed");
        let merged = fleet.merge_aer(DEAD_TIME);
        let demuxed = datc::uwb::aer::demux(
            &merged.merged,
            CHANNELS,
            header.tick_rate_hz,
            header.duration_s,
        );
        // (2 s sessions stay under the hub's bounded force window, so
        // the retained tail is the whole trace)
        for (ch, stream) in demuxed.iter().enumerate() {
            let batch = sliding_rate(stream, 0.25, 100.0);
            assert_eq!(
                s.report.force_tail[ch],
                batch.samples(),
                "session {id} channel {ch}"
            );
        }
    }
}

#[test]
fn wire_round_trip_preserves_fleet_event_streams_exactly() {
    // encode → packetize → decode → demux == the original per-channel
    // streams, timestamps bit-for-bit.
    let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
    let signals = semg_fleet(3, 1.5, 77);
    let fleet = FleetRunner::new(config, 3).unwrap().encode(&signals);
    let merged = fleet.merge_aer(25e-6);

    let header = datc::wire::SessionHeader::new(
        9,
        3,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let wire = datc::wire::packet::encode_session(header, &merged.merged);
    let mut rx = datc::wire::StreamDecoder::new();
    for chunk in wire.chunks(777) {
        rx.push_bytes(chunk);
    }
    let mut decoded = Vec::new();
    rx.drain_events(&mut decoded);
    assert_eq!(decoded, merged.merged);

    let back = datc::uwb::aer::demux(&decoded, 3, header.tick_rate_hz, header.duration_s);
    let reference =
        datc::uwb::aer::demux(&merged.merged, 3, header.tick_rate_hz, header.duration_s);
    for (ch, (a, b)) in back.iter().zip(&reference).enumerate() {
        let eq = |s: &EventStream| s.events().to_vec();
        assert_eq!(eq(a), eq(b), "channel {ch}");
    }
}
