//! Workspace-level property tests: invariants that must hold for
//! arbitrary signals, event streams and bit streams.

use datc::core::atc::AtcEncoder;
use datc::core::bank::{BankEventSink, BankStream, SimdPolicy, TilePolicy};
use datc::core::comparator::Comparator;
use datc::core::config::{Arithmetic, DatcConfig, FrameSize};
use datc::core::dtc::Dtc;
use datc::core::encoder::{EventSink, SpikeEncoder, TraceLevel};
use datc::core::stream::DatcStream;
use datc::core::{DatcEncoder, Event, EventStream};
use datc::engine::FleetRunner;
use datc::rtl::verify::lockstep;
use datc::rx::{HybridReconstructor, RateReconstructor, Reconstructor};
use datc::signal::resample::ZohResampler;
use datc::signal::Signal;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DatcConfig> {
    (
        prop_oneof![
            Just(FrameSize::F100),
            Just(FrameSize::F200),
            Just(FrameSize::F400),
            Just(FrameSize::F800),
        ],
        2u8..=6, // DAC resolution
        prop_oneof![Just(1000.0f64), Just(2000.0), Just(2500.0), Just(4000.0)],
        prop_oneof![Just(Arithmetic::Fixed), Just(Arithmetic::Float)],
        prop_oneof![
            Just(TraceLevel::Events),
            Just(TraceLevel::Frames),
            Just(TraceLevel::Full),
        ],
    )
        .prop_map(|(frame, bits, clock, arith, trace)| {
            DatcConfig::paper()
                .with_frame_size(frame)
                .with_dac_bits(bits)
                .with_clock_hz(clock)
                .with_arithmetic(arith)
                .with_trace_level(trace)
        })
}

fn arb_comparator() -> impl Strategy<Value = Comparator> {
    // ideal, offset-only, hysteresis, noise, and the full combination —
    // the populations the SoA non-ideal bank path must reproduce
    (
        -0.08f64..0.08,
        0.0f64..0.15,
        0.0f64..0.05,
        any::<u64>(),
        0u8..5,
    )
        .prop_map(|(offset, hyst, sigma, seed, kind)| match kind {
            0 => Comparator::ideal(),
            1 => Comparator::ideal().with_offset(offset),
            2 => Comparator::ideal().with_hysteresis(hyst),
            3 => Comparator::ideal().with_noise(sigma, seed),
            _ => Comparator::ideal()
                .with_offset(offset)
                .with_hysteresis(hyst)
                .with_noise(sigma, seed),
        })
}

fn arb_tiling() -> impl Strategy<Value = TilePolicy> {
    (0u8..3, 1usize..5, 1024usize..32768).prop_map(|(kind, ch, bytes)| match kind {
        0 => TilePolicy::auto(),
        1 => TilePolicy::none(),
        _ => TilePolicy {
            max_tile_channels: ch,
            target_tile_bytes: bytes,
        },
    })
}

fn arb_signal() -> impl Strategy<Value = Signal> {
    // piecewise-amplitude noise bursts, 0.5–2 s at 2.5 kHz
    (
        proptest::collection::vec(0.0f64..1.0, 2..6),
        any::<u64>(),
        1250usize..5000,
    )
        .prop_map(|(amps, seed, n)| {
            let mut g = datc::signal::noise::GaussianNoise::new(seed);
            let seg = n / amps.len().max(1);
            let data: Vec<f64> = (0..n)
                .map(|i| {
                    let a = amps[(i / seg.max(1)).min(amps.len() - 1)];
                    (a * g.standard()).abs()
                })
                .collect();
            Signal::from_samples(data, 2500.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_tick_and_chunk_encodings_are_identical(
        config in arb_config(),
        signal in arb_signal(),
    ) {
        // The trait-level contract of the unified kernel: batch
        // `SpikeEncoder::encode`, per-tick `DatcStream::tick` and chunked
        // `DatcStream::push_chunk` see the same resampled input and
        // produce identical events, traces and duty counters.
        let batch = DatcEncoder::new(config).encode(&signal);

        // per-tick drive through the public resampler
        let zoh = ZohResampler::new(signal.sample_rate(), config.clock_hz);
        let n_ticks = zoh.ticks_for_len(signal.len());
        let last = signal.len() - 1;
        let mut by_tick = DatcStream::new(config).unwrap();
        let mut tick_events = Vec::new();
        let mut tick_codes = Vec::new();
        for k in 0..n_ticks {
            let out = by_tick.tick(signal.samples()[zoh.index(k).min(last)]);
            if let Some(e) = out.event {
                tick_events.push(e);
            }
            tick_codes.push(out.set_vth);
        }
        prop_assert_eq!(&tick_events[..], batch.events.events());
        if config.trace == TraceLevel::Full {
            prop_assert_eq!(&tick_codes[..], &batch.vth_code_trace[..]);
        }

        // chunked drive: resample explicitly, split at awkward boundaries
        let resampled: Vec<f64> = (0..n_ticks)
            .map(|k| signal.samples()[zoh.index(k).min(last)])
            .collect();
        let mut by_chunk = DatcStream::new(config).unwrap();
        let mut sink = EventSink::new(config.clock_hz);
        for chunk in resampled.chunks(257) {
            by_chunk.push_chunk(chunk, &mut sink);
        }
        prop_assert_eq!(sink.events(), batch.events.events());
        prop_assert_eq!(by_chunk.ticks(), batch.ticks);
    }

    #[test]
    fn bank_kernel_is_bit_exact_with_independent_streams(
        config in arb_config(),
        signals in proptest::collection::vec(arb_signal(), 1..5),
    ) {
        // The SoA multi-channel kernel must reproduce N independent
        // single-channel streams exactly: same events (ticks, times,
        // codes), same duty counters — for any configuration.
        let n = signals.len();
        // push_signals requires a common length; trim to the shortest.
        let len = signals.iter().map(datc::signal::Signal::len).min().unwrap();
        let signals: Vec<datc::signal::Signal> = signals
            .iter()
            .map(|s| s.slice(0, len).unwrap())
            .collect();

        let mut bank = BankStream::new(config, n).unwrap();
        let mut sink = BankEventSink::new(config.clock_hz, n);
        let bank_ticks = bank.push_signals(&signals, &mut sink);

        for (c, s) in signals.iter().enumerate() {
            let mut solo = DatcStream::new(config).unwrap();
            let mut es = EventSink::new(config.clock_hz);
            let solo_ticks = solo.push_signal(s, &mut es);
            prop_assert_eq!(solo_ticks, bank_ticks);
            prop_assert_eq!(sink.events(c), es.events(), "channel {}", c);
        }
    }

    #[test]
    fn bank_paths_are_bit_exact_with_solo_streams_under_any_comparator(
        config in arb_config(),
        signals in proptest::collection::vec(arb_signal(), 1..5),
        comparators in proptest::collection::vec(arb_comparator(), 5..6),
        tiling in arb_tiling(),
    ) {
        // The PR-5 acceptance property: SIMD and scalar kernels, any
        // tile shape, ideal AND non-ideal (offset/hysteresis/noise)
        // comparators — the bank reproduces N independent DatcStreams
        // carrying the same comparator configs bit for bit (events,
        // codes, duty counters).
        let n = signals.len();
        let len = signals.iter().map(datc::signal::Signal::len).min().unwrap();
        let signals: Vec<datc::signal::Signal> = signals
            .iter()
            .map(|s| s.slice(0, len).unwrap())
            .collect();
        let comparators = &comparators[..n];

        // reference: independent per-channel streams
        let mut solo_events = Vec::new();
        let mut solo_ones = Vec::new();
        for (s, comp) in signals.iter().zip(comparators) {
            let mut stream = DatcStream::new(config).unwrap().with_comparator(comp.clone());
            let mut count = datc::core::encoder::CountingSink::default();
            let mut probe = DatcStream::new(config).unwrap().with_comparator(comp.clone());
            let mut es = EventSink::new(config.clock_hz);
            stream.push_signal(s, &mut count);
            probe.push_signal(s, &mut es);
            solo_events.push(es.events().to_vec());
            solo_ones.push(count.ones);
        }

        for simd in [SimdPolicy::Auto, SimdPolicy::ForceScalar] {
            let mut bank = BankStream::new(config, n)
                .unwrap()
                .with_comparators(comparators)
                .unwrap()
                .with_simd_policy(simd)
                .with_tiling(tiling);
            let mut sink = BankEventSink::new(config.clock_hz, n);
            bank.push_signals(&signals, &mut sink);
            let (events, ones, _) = sink.into_parts();
            for c in 0..n {
                prop_assert_eq!(&events[c], &solo_events[c], "events ch {} {:?}", c, simd);
                prop_assert_eq!(ones[c], solo_ones[c], "ones ch {} {:?}", c, simd);
            }
        }
    }

    #[test]
    fn fleet_output_is_invariant_under_thread_count(
        signal in arb_signal(),
        channels in 1usize..7,
        threads_a in 1usize..9,
        threads_b in 1usize..9,
    ) {
        // Sharding is an execution detail: any worker count (and any
        // shard boundary placement it implies) yields identical output.
        let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
        let signals: Vec<datc::signal::Signal> = (0..channels)
            .map(|c| {
                let mut s = signal.clone();
                for v in s.samples_mut() {
                    *v *= 0.5 + 0.1 * c as f64;
                }
                s
            })
            .collect();
        let a = FleetRunner::new(config, channels).unwrap().with_threads(threads_a).encode(&signals);
        let b = FleetRunner::new(config, channels).unwrap().with_threads(threads_b).encode(&signals);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn datc_codes_always_within_dac_range(signal in arb_signal()) {
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&signal);
        prop_assert!(out.vth_code_trace.iter().all(|&c| (1..=15).contains(&c)));
        let codes_ok = out
            .events
            .iter()
            .all(|e| e.vth_code.map(|c| (1..=15).contains(&c)).unwrap_or(false));
        prop_assert!(codes_ok);
    }

    #[test]
    fn datc_events_are_strictly_ordered(signal in arb_signal()) {
        let out = DatcEncoder::new(DatcConfig::paper()).encode(&signal);
        let evs = out.events.events();
        prop_assert!(evs.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    #[test]
    fn atc_event_count_bounded_by_half_samples(signal in arb_signal()) {
        // a rising edge needs at least one below-sample between events
        let ev = AtcEncoder::new(0.3).encode(&signal).events;
        prop_assert!(ev.len() <= signal.len() / 2 + 1);
    }

    #[test]
    fn atc_decays_in_the_threshold_tail(signal in arb_signal()) {
        // Crossing counts peak near v ≈ σ and decay Rice-style beyond it:
        // in the tail (thresholds above the loudest segment's RMS) higher
        // thresholds must fire less, and a threshold above the peak fires
        // never.
        let peak = signal.samples().iter().cloned().fold(0.0f64, f64::max);
        let sigma_max = datc::signal::stats::rms(signal.samples()).max(1e-6);
        let mid = AtcEncoder::new(1.5 * sigma_max).encode(&signal).events.len();
        let far = AtcEncoder::new(3.0 * sigma_max).encode(&signal).events.len();
        prop_assert!(mid + 5 >= far, "tail decay violated: {mid} vs {far}");
        let above = AtcEncoder::new(peak + 1e-9).encode(&signal).events.len();
        prop_assert_eq!(above, 0);
    }

    #[test]
    fn fixed_and_float_dtc_stay_within_one_code(
        bits in proptest::collection::vec(any::<bool>(), 500..3000),
        frame in prop_oneof![
            Just(FrameSize::F100),
            Just(FrameSize::F200),
            Just(FrameSize::F400),
            Just(FrameSize::F800),
        ],
    ) {
        let mut fx = Dtc::new(DatcConfig::paper().with_frame_size(frame)).unwrap();
        let mut fl = Dtc::new(
            DatcConfig::paper()
                .with_frame_size(frame)
                .with_arithmetic(Arithmetic::Float),
        )
        .unwrap();
        for &b in &bits {
            let a = fx.step(b);
            let c = fl.step(b);
            prop_assert!(
                (i16::from(a.set_vth) - i16::from(c.set_vth)).abs() <= 1,
                "codes diverged: {} vs {}", a.set_vth, c.set_vth
            );
        }
    }

    #[test]
    fn rtl_matches_behavioural_on_random_streams(
        bits in proptest::collection::vec(any::<bool>(), 200..1200),
    ) {
        let mismatch = lockstep(DatcConfig::paper(), bits).unwrap();
        prop_assert_eq!(mismatch, None);
    }

    #[test]
    fn reconstructions_cover_the_observation_window(
        times in proptest::collection::vec(0.0f64..10.0, 0..200),
    ) {
        let mut sorted = times;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let events: Vec<Event> = sorted
            .iter()
            .enumerate()
            .map(|(i, &t)| Event {
                tick: (t * 2000.0) as u64 + i as u64, // keep ticks ordered
                time_s: t,
                vth_code: Some((i % 15 + 1) as u8),
            })
            .collect();
        let stream = EventStream::new(events, 2000.0, 10.0);
        for recon in [
            RateReconstructor::default().reconstruct(&stream, 50.0),
            HybridReconstructor::paper().reconstruct(&stream, 50.0),
        ] {
            prop_assert_eq!(recon.len(), 500);
            prop_assert!(recon.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn recruitment_is_monotone_in_excitation(
        n_units in 20usize..90,
        level in 0.2f64..0.95,
        seed in any::<u64>(),
    ) {
        // The size principle, as an invariant of the generated trains:
        // whenever a higher-threshold unit fires at all, every
        // lower-threshold unit fires too, and is recruited no later.
        use datc::signal::motor::{generate_spike_trains, MotorUnitPool, PoolParams};
        let pool = MotorUnitPool::new(PoolParams::with_units(n_units));
        let fs = 2000.0;
        // ramp up to `level` then hold — recruitment order plays out on
        // the ramp
        let n = (1.5 * fs) as usize;
        let drive: Vec<f64> = (0..n)
            .map(|k| level * (3.0 * k as f64 / n as f64).min(1.0))
            .collect();
        let trains = generate_spike_trains(&pool, &drive, fs, seed);
        for i in 1..n_units {
            let (lower, higher) = (trains.train(i - 1), trains.train(i));
            if let Some(&h_first) = higher.first() {
                let l_first = lower.first().copied();
                prop_assert!(
                    l_first.is_some_and(|l| l <= h_first),
                    "unit {} fired (first {}) while smaller unit {} had {:?}",
                    i, h_first, i - 1, l_first
                );
            }
        }
    }

    #[test]
    fn generated_force_tracks_the_target(
        n_units in 40usize..120,
        level in 0.25f64..0.85,
        seed in any::<u64>(),
    ) {
        // Open-loop drive inversion: holding a target produces that much
        // summed twitch force, for any pool size and seed.
        use datc::signal::motor::{
            generate_spike_trains, synthesize_force, FatigueModel, MotorUnitPool, PoolParams,
        };
        let pool = MotorUnitPool::new(PoolParams::with_units(n_units));
        let fs = 2000.0;
        let target = vec![level; (4.0 * fs) as usize];
        let drive = pool.excitation_drive(&target);
        let trains = generate_spike_trains(&pool, &drive, fs, seed);
        let force = synthesize_force(&pool, &trains, FatigueModel::none());
        let half = force.len() / 2;
        let mean =
            force.samples()[half..].iter().sum::<f64>() / (force.len() - half) as f64;
        prop_assert!(
            (mean - level).abs() < 0.15,
            "steady force {mean} vs target {level} ({n_units} units, seed {seed})"
        );
    }

    #[test]
    fn identical_seeds_give_bit_identical_semg(
        scenario_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        use datc::signal::motor::{MotorWorkload, WorkloadScenario};
        let scenario = WorkloadScenario::all()[scenario_idx]; // Copy
        let a = MotorWorkload::new(scenario, 2000.0).run(1.0, seed);
        let b = MotorWorkload::new(scenario, 2000.0).run(1.0, seed);
        prop_assert_eq!(a.semg.samples(), b.semg.samples());
        prop_assert_eq!(a.force.samples(), b.force.samples());
        prop_assert_eq!(a.trains.total_spikes(), b.trains.total_spikes());
    }

    #[test]
    fn crc8_detects_any_single_bit_flip(
        msg in proptest::collection::vec(any::<u8>(), 1..32),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let good = datc::uwb::crc::crc8(&msg);
        let mut bad = msg.clone();
        let idx = byte_idx.index(bad.len());
        bad[idx] ^= 1 << bit;
        prop_assert_ne!(datc::uwb::crc::crc8(&bad), good);
    }
}
