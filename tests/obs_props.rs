//! Telemetry reconciliation properties: for arbitrary chaos seeds and
//! fault mixes, the metrics registry must agree *exactly* with the
//! ground truth the rest of the system keeps — the chaos fate log, the
//! decoder's `WireStats` books, and the hub's `HubHealth` roll-ups.
//! Observability that drifts from the books is worse than none.
//!
//! Also pins the determinism claim: the tick-domain latency histograms
//! (and every other non-wall-clock series) are a pure function of the
//! delivered byte stream, so two identical chaos runs render
//! byte-identical Prometheus snapshots.

use datc::core::Event;
use datc::obs::{render_prometheus, MetricValue, Registry};
use datc::uwb::aer::AddressedEvent;
use datc::wire::obs::{self, SessionObs};
use datc::wire::{
    ChaosLink, ChaosProfile, ChaosStats, HubSession, Packetizer, SessionHeader, SessionReport,
    SessionRx, SessionRxConfig, SessionTable,
};
use proptest::prelude::*;

/// Arbitrary fault mixes: the named profiles plus free-form blends of
/// drop / duplicate / reorder / corrupt / truncate (probability sum
/// kept well under the model's budget of 1).
fn arb_profile() -> impl Strategy<Value = ChaosProfile> {
    (
        (0u8..5, 1u32..6),
        (
            0.0f64..0.2,
            0.0f64..0.1,
            0.0f64..0.2,
            0.0f64..0.05,
            0.0f64..0.05,
        ),
    )
        .prop_map(
            |((kind, span), (drop, duplicate, reorder, corrupt, truncate))| match kind {
                0 => ChaosProfile::ideal(),
                1 => ChaosProfile::lossy(),
                2 => ChaosProfile::bursty(),
                3 => ChaosProfile::mangler(),
                _ => ChaosProfile {
                    name: "blend",
                    drop,
                    duplicate,
                    reorder,
                    reorder_span: span,
                    corrupt,
                    truncate,
                    ..ChaosProfile::ideal()
                },
            },
        )
}

struct SessionRun {
    report: SessionReport,
    chaos: ChaosStats,
    bytes_received: u64,
    registry: Registry,
}

/// One full tx → chaos → instrumented rx pass, pure in its arguments.
fn run_session(
    seed: u64,
    profile: ChaosProfile,
    n_events: usize,
    channels: u8,
    events_per_frame: usize,
) -> SessionRun {
    let tick_rate = 2000.0;
    let duration = (n_events as f64 * 13.0 + 2.0) / tick_rate;
    let header = SessionHeader::new(42, channels.into(), tick_rate, duration);
    let events: Vec<AddressedEvent> = (0..n_events)
        .map(|i| AddressedEvent {
            channel: (i % channels as usize) as u8,
            event: Event::at_tick(i as u64 * 13 + 1, header.tick_period_s, Some(5)),
        })
        .collect();

    let mut tx = Packetizer::new(header).with_events_per_frame(events_per_frame);
    let mut units: Vec<Vec<u8>> = vec![tx.hello()];
    units.extend(tx.data_frames(&events));
    units.push(tx.bye());

    let mut link = ChaosLink::new(seed, profile);
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    for unit in &units {
        link.push(unit, &mut delivered);
    }
    link.flush(&mut delivered);

    let registry = Registry::new();
    let mut rx = SessionRx::new(SessionRxConfig::default())
        .with_metrics(SessionObs::register(&registry, "p"));
    let mut bytes_received = 0u64;
    for unit in &delivered {
        bytes_received += unit.len() as u64;
        rx.push_bytes(unit);
    }
    SessionRun {
        report: rx.finish(),
        chaos: link.stats(),
        bytes_received,
        registry,
    }
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.snapshot()
        .into_iter()
        .find_map(|(n, labels, v)| match (n == name, v) {
            (true, MetricValue::Counter(c)) => {
                assert_eq!(labels, "session=\"p\"", "{name} carries the session label");
                Some(c)
            }
            _ => None,
        })
        .unwrap_or_else(|| panic!("{name} registered"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chaos fate log self-reconciles, the per-session registry
    /// counters equal the decoder's books field for field, and feeding
    /// the finished session to a hub table reproduces both in the
    /// `HubHealth` roll-ups and the `wire_totals` aggregate.
    #[test]
    fn registry_reconciles_with_chaos_books_and_hub_health(
        seed in any::<u64>(),
        profile in arb_profile(),
        n_events in 40usize..300,
        channels in 1u8..5,
        events_per_frame in 4usize..32,
    ) {
        let run = run_session(seed, profile, n_events, channels, events_per_frame);
        let c = run.chaos;

        // The chaos link's own books balance once flushed.
        prop_assert_eq!(
            c.delivered, c.units - c.dropped + c.duplicated,
            "fate log reconciles (seed {:#x})", seed
        );
        prop_assert_eq!(c.units, (2 + n_events.div_ceil(events_per_frame)) as u64);

        // Every per-session counter equals the decoder's book verbatim.
        let s = &run.report.stats;
        let reg = &run.registry;
        prop_assert_eq!(counter(reg, obs::RX_FRAMES), s.frames);
        prop_assert_eq!(counter(reg, obs::RX_DUPLICATE_FRAMES), s.duplicate_frames);
        prop_assert_eq!(counter(reg, obs::RX_CRC_FAILURES), s.crc_failures);
        prop_assert_eq!(counter(reg, obs::RX_RESYNC_BYTES), s.resync_bytes);
        prop_assert_eq!(counter(reg, obs::RX_MALFORMED_FRAMES), s.malformed_frames);
        prop_assert_eq!(counter(reg, obs::RX_ORPHAN_FRAMES), s.orphan_frames);
        prop_assert_eq!(counter(reg, obs::RX_EVENTS_DECODED), s.events_decoded);
        prop_assert_eq!(counter(reg, obs::RX_EVENTS_LOST), s.events_lost);
        prop_assert_eq!(counter(reg, obs::RX_GAPS), s.gaps);

        // On a byte-exact link the wire books also reconcile with the
        // fate log: every event was either decoded or booked lost, and
        // frame arrivals match delivered units (duplicates included).
        if profile.is_byte_exact() && s.closed {
            prop_assert_eq!(
                s.events_decoded + s.events_lost, n_events as u64,
                "decoded + lost == sent (seed {:#x})", seed
            );
            // `frames` counts every CRC-valid arrival, duplicate DATA
            // copies included (they are additionally booked under
            // `duplicate_frames`), so it matches delivered units 1:1.
            prop_assert_eq!(
                s.frames, c.delivered,
                "every delivered unit is booked (seed {:#x})", seed
            );
        }

        // Hub roll-ups: inserting the finished session reproduces the
        // same numbers through HubHealth and wire_totals.
        let table = SessionTable::shared();
        let session_id = run.report.header.map_or(0, |h| h.session_id);
        table.insert(0, HubSession {
            session_id,
            bytes_received: run.bytes_received,
            report: run.report.clone(),
        });
        let health = table.health();
        prop_assert_eq!(health.sessions_finished, 1);
        prop_assert_eq!(health.events_decoded, s.events_decoded);
        prop_assert_eq!(health.events_lost, s.events_lost);
        prop_assert_eq!(health.foreign_frames, s.foreign_frames);
        prop_assert_eq!(
            health.decode_errors,
            s.crc_failures + s.malformed_frames + s.orphan_frames
        );
        prop_assert_eq!(&table.wire_totals(), s, "single-session aggregate is the session");
    }

    /// Same seed, same profile → byte-identical rendered snapshot:
    /// the latency histograms (and everything else deterministic) are
    /// pure functions of the delivered byte stream.
    #[test]
    fn snapshots_are_bit_reproducible_per_seed(
        seed in any::<u64>(),
        profile in arb_profile(),
        n_events in 40usize..200,
    ) {
        let a = run_session(seed, profile, n_events, 3, 16);
        let b = run_session(seed, profile, n_events, 3, 16);
        prop_assert_eq!(
            render_prometheus(&a.registry),
            render_prometheus(&b.registry),
            "snapshot must replay bit-for-bit (seed {:#x})", seed
        );
    }
}
