//! Chaos soak (the CI gate for the resilience subsystem): drive
//! motor-fleet traffic through hostile links under pinned seeds and
//! assert the books stay *exact* — every injected fault is either
//! survived or counted, never smeared.
//!
//! Every failure message carries the chaos seed: rerun with the same
//! seed and the whole fault schedule replays bit-for-bit
//! (`ChaosLink::new(seed, profile)` is pure in its arguments).
//!
//! Profile coverage:
//!
//! * `lossy` (drop + duplicate + reorder) over TCP and over UDP;
//! * `bursty` (drop + stall windows) over TCP;
//! * `mangler` (drop + bit corruption + truncation) over TCP;
//! * `outage` (periodic disconnects) over TCP with sender retries and
//!   hub-side session resume;
//! * `outage+stall` (disconnect windows × stall windows, combined)
//!   over UDP;
//! * `lossy` over UDP with receiver-driven flow control: FEEDBACK
//!   frames drive replay-window repairs (in-window losses recovered,
//!   books still exact) and a pressured hub throttles a compliant
//!   sender via AIMD instead of quarantining it.

use std::sync::Arc;

use datc::core::{DatcConfig, TraceLevel};
use datc::engine::{FleetOutput, FleetRunner};
use datc::rx::reconstruct::{Reconstructor, ThresholdTrackReconstructor};
use datc::signal::generator::semg_fleet;
use datc::uwb::aer::AddressedEvent;
use datc::wire::chaos::{DisconnectPlan, StallWindow};
use datc::wire::flow::{AimdConfig, FlowConfig};
use datc::wire::udp::{UdpSessionSender, UdpTelemetryHub};
use datc::wire::{
    capture_store, ChaosLink, ChaosProfile, Fate, HubConfig, HubSession, MemorySink, RetryPolicy,
    SessionSender, SessionTable, SinkFactory, TelemetryHub,
};

const CHANNELS: usize = 3;
const DEAD_TIME: f64 = 25e-6;
/// One DATA frame per chunk ⇒ chunk `k` is chaos unit `k`, which is
/// what makes the fate log translate into an exact expected-loss
/// number (the default events-per-frame cap is far above this). Small
/// enough that a 2 s session spans ~90 units — past the bursty
/// profile's first stall window.
const CHUNK: usize = 8;

fn encode_fleet(seed: u64) -> FleetOutput {
    let config = DatcConfig::paper().with_trace_level(TraceLevel::Events);
    let signals = semg_fleet(CHANNELS, 2.0, seed);
    FleetRunner::new(config, CHANNELS)
        .expect("valid fleet")
        .encode(&signals)
}

/// Expected exact loss implied by a fate log: total and per channel.
/// `fates()[k]` is the fate of the DATA frame carrying `chunks[k]`; a
/// lost fate (drop, outage drop, corruption, truncation) costs exactly
/// that chunk's events.
fn expected_loss(fates: &[Fate], events: &[AddressedEvent]) -> (u64, Vec<u64>) {
    let mut total = 0u64;
    let mut per_channel = vec![0u64; CHANNELS];
    for (fate, chunk) in fates.iter().zip(events.chunks(CHUNK)) {
        if fate.is_lost() {
            total += chunk.len() as u64;
            for ae in chunk {
                per_channel[usize::from(ae.channel)] += 1;
            }
        }
    }
    (total, per_channel)
}

/// Asserts a finished session's books match the fate log exactly and
/// that the streamed reconstruction is bit-identical to the batch
/// reconstruction of the events that actually survived (from a sink
/// capture).
fn assert_exact_books(
    s: &HubSession,
    survivors: &[AddressedEvent],
    total_sent: u64,
    expected_total: u64,
    expected_per_channel: &[u64],
    seed: u64,
    what: &str,
) {
    assert!(
        s.report.stats.closed,
        "{what}: BYE must close the books (seed {seed:#x})"
    );
    assert_eq!(
        s.report.stats.events_lost, expected_total,
        "{what}: exact injected loss (seed {seed:#x})"
    );
    assert_eq!(
        s.report.stats.events_decoded + s.report.stats.events_lost,
        total_sent,
        "{what}: decoded + lost == sent (seed {seed:#x})"
    );
    for (ch, expected) in expected_per_channel.iter().enumerate() {
        assert_eq!(
            s.report.stats.per_channel[ch].lost,
            Some(*expected),
            "{what}: channel {ch} exact loss (seed {seed:#x})"
        );
    }
    assert_eq!(
        survivors.len() as u64,
        s.report.stats.events_decoded,
        "{what}: sink saw each decoded event exactly once (seed {seed:#x})"
    );
    assert!(s.report.force_is_finite());
    // Bit-exactness of the degraded reconstruction: streaming over the
    // survivors equals batch over the survivors, channel for channel.
    let header = s.report.header.expect("hello processed");
    let demuxed =
        datc::uwb::aer::demux(survivors, CHANNELS, header.tick_rate_hz, header.duration_s);
    for (ch, stream) in demuxed.iter().enumerate() {
        let batch = ThresholdTrackReconstructor::paper().reconstruct(stream, 100.0);
        assert_eq!(
            s.report.force_tail[ch],
            batch.samples(),
            "{what}: channel {ch} bit-exact on survivors (seed {seed:#x})"
        );
    }
}

fn sink_hub() -> (
    TelemetryHub,
    Arc<std::sync::Mutex<Vec<datc::wire::SessionCapture>>>,
) {
    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let hub = TelemetryHub::bind_with(
        "127.0.0.1:0",
        threshold_track_config(),
        SessionTable::shared(),
        Some(factory),
    )
    .expect("bind loopback");
    (hub, store)
}

/// The paper's D-ATC receiver with unbounded traces (sessions are
/// seconds long, well inside test memory).
fn threshold_track_config() -> HubConfig {
    HubConfig {
        session: datc::wire::SessionRxConfig {
            recon: datc::rx::online::OnlineReconSelect::paper_threshold_track(),
            force_window: None,
            ..datc::wire::SessionRxConfig::default()
        },
        ..HubConfig::default()
    }
}

/// Everything a soak assertion needs from one chaos session over TCP.
struct SoakRun {
    session: HubSession,
    /// The events the sink actually captured (the survivors).
    survivors: Vec<AddressedEvent>,
    /// The full merged stream the sender offered.
    merged: Vec<AddressedEvent>,
    /// The chaos fate log, one entry per DATA frame.
    fates: Vec<Fate>,
    client: datc::wire::ClientReport,
    health: datc::wire::HubHealth,
}

fn soak_tcp(seed: u64, profile: ChaosProfile, retry: RetryPolicy, session_id: u32) -> SoakRun {
    let (hub, store) = sink_hub();
    let table = hub.session_table();
    let fleet = encode_fleet(4242 + u64::from(session_id));
    let merged = fleet.merge_aer(DEAD_TIME).merged;
    let header = datc::wire::SessionHeader::new(
        session_id,
        CHANNELS as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let mut tx = SessionSender::connect_with(hub.local_addr(), header, retry)
        .expect("connect")
        .with_chaos(ChaosLink::new(seed, profile));
    for chunk in merged.chunks(CHUNK) {
        tx.send_events(chunk).expect("send under chaos");
    }
    let fates_before_flush = tx.chaos_link().expect("chaos installed").fates().to_vec();
    let client = tx.finish().expect("finish under chaos");
    // Health is read *after* shutdown joins the worker threads, so the
    // counters have settled (the table outlives the hub).
    let sessions = hub.shutdown();
    let health = table.health();
    assert_eq!(
        sessions.len(),
        1,
        "one stitched session under {} (seed {seed:#x})",
        profile.name
    );
    let captures = store.lock().unwrap();
    let survivors = captures[0].events.clone();
    SoakRun {
        session: sessions.into_iter().next().unwrap(),
        survivors,
        merged,
        fates: fates_before_flush,
        client,
        health,
    }
}

#[test]
fn lossy_profile_over_tcp_books_every_fault_exactly() {
    const SEED: u64 = 0xA5A5_0001;
    let run = soak_tcp(SEED, ChaosProfile::lossy(), RetryPolicy::none(), 1);
    let (expected_total, expected_per_channel) = expected_loss(&run.fates, &run.merged);
    assert!(expected_total > 0, "lossy profile must cost something");
    assert_eq!(run.client.events_sent, run.merged.len() as u64);
    assert_eq!(run.client.reconnects, 0);
    assert!(!run.client.gave_up);
    assert_exact_books(
        &run.session,
        &run.survivors,
        run.merged.len() as u64,
        expected_total,
        &expected_per_channel,
        SEED,
        "lossy/tcp",
    );
}

#[test]
fn bursty_profile_over_tcp_stall_windows_cost_latency_not_loss() {
    const SEED: u64 = 0xA5A5_0002;
    let run = soak_tcp(SEED, ChaosProfile::bursty(), RetryPolicy::none(), 2);
    let (expected_total, expected_per_channel) = expected_loss(&run.fates, &run.merged);
    assert!(!run.client.gave_up);
    assert_exact_books(
        &run.session,
        &run.survivors,
        run.merged.len() as u64,
        expected_total,
        &expected_per_channel,
        SEED,
        "bursty/tcp",
    );
    // Stalled units were buffered, never lost: only dice drops cost.
    let stalled = run.fates.iter().filter(|f| **f == Fate::Stall).count();
    assert!(stalled > 0, "the stall window engaged (seed {SEED:#x})");
}

#[test]
fn mangler_profile_over_tcp_corruption_is_counted_not_smeared() {
    const SEED: u64 = 0xA5A5_0003;
    let run = soak_tcp(SEED, ChaosProfile::mangler(), RetryPolicy::none(), 3);
    let (expected_total, expected_per_channel) = expected_loss(&run.fates, &run.merged);
    assert!(!run.client.gave_up);
    // Pinned seed: this exact fault schedule was validated once to hit
    // no CRC false-accept (~2⁻¹⁶ per damaged frame on arbitrary seeds)
    // and replays deterministically forever after.
    assert!(
        run.session.report.stats.crc_failures > 0,
        "the mangler damaged frames on the wire (seed {SEED:#x})"
    );
    assert_exact_books(
        &run.session,
        &run.survivors,
        run.merged.len() as u64,
        expected_total,
        &expected_per_channel,
        SEED,
        "mangler/tcp",
    );
}

#[test]
fn outage_profile_over_tcp_retries_resume_and_book_the_outage_as_loss() {
    const SEED: u64 = 0xA5A5_0004;
    let retry = RetryPolicy {
        max_retries: 8,
        base_delay: std::time::Duration::from_millis(1),
        max_delay: std::time::Duration::from_millis(10),
        jitter_seed: SEED,
    };
    let run = soak_tcp(SEED, ChaosProfile::outage(16, 3), retry, 4);
    let (expected_total, expected_per_channel) = expected_loss(&run.fates, &run.merged);
    assert!(
        expected_total > 0,
        "outage must cost events (seed {SEED:#x})"
    );
    assert!(
        run.client.reconnects >= 1,
        "disconnects forced reconnects (seed {SEED:#x})"
    );
    assert!(!run.client.gave_up);
    assert_exact_books(
        &run.session,
        &run.survivors,
        run.merged.len() as u64,
        expected_total,
        &expected_per_channel,
        SEED,
        "outage/tcp",
    );
    // HubHealth reconciles with the client's story: one logical
    // session, every reconnect adopted, nothing in flight after close.
    // Registry-backed, so it reads zeros when `metrics` is off — the
    // loss books above are plain struct fields and hold either way.
    if cfg!(feature = "metrics") {
        assert_eq!(run.health.sessions_started, 1, "seed {SEED:#x}");
        assert_eq!(run.health.resumed, run.client.reconnects, "seed {SEED:#x}");
        assert_eq!(run.health.in_flight, 0, "seed {SEED:#x}");
        assert_eq!(run.health.events_lost, expected_total, "seed {SEED:#x}");
    }
}

#[test]
fn lossy_profile_over_udp_books_every_fault_exactly() {
    const SEED: u64 = 0xA5A5_0005;
    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let hub = UdpTelemetryHub::bind_with(
        "127.0.0.1:0",
        threshold_track_config(),
        SessionTable::shared(),
        Some(factory),
    )
    .expect("bind loopback");
    let fleet = encode_fleet(5555);
    let merged = fleet.merge_aer(DEAD_TIME).merged;
    let header = datc::wire::SessionHeader::new(
        5,
        CHANNELS as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let mut tx = UdpSessionSender::connect(hub.local_addr(), header)
        .expect("connect")
        .with_chaos(ChaosLink::new(SEED, ChaosProfile::lossy()));
    for chunk in merged.chunks(CHUNK) {
        tx.send_events(chunk).expect("send under chaos");
    }
    let fates = tx.chaos_link().expect("chaos installed").fates().to_vec();
    let client = tx.finish().expect("finish under chaos");
    let (expected_total, expected_per_channel) = expected_loss(&fates, &merged);
    assert!(expected_total > 0, "lossy profile must cost something");
    assert_eq!(client.events_sent, merged.len() as u64);

    // BYE-triggered retirement (grace window) — wait for the books.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while hub.session_count() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1, "seed {SEED:#x}");
    let captures = store.lock().unwrap();
    let survivors = captures[0].events.clone();
    assert_exact_books(
        &sessions[0],
        &survivors,
        merged.len() as u64,
        expected_total,
        &expected_per_channel,
        SEED,
        "lossy/udp",
    );
}

/// A UDP hub with a sink capture and a given feedback cadence.
fn udp_sink_hub(
    config: HubConfig,
) -> (
    UdpTelemetryHub,
    Arc<std::sync::Mutex<Vec<datc::wire::SessionCapture>>>,
) {
    let store = capture_store();
    let factory: SinkFactory = {
        let store = store.clone();
        Arc::new(move |_conn| Box::new(MemorySink::new(store.clone())) as Box<_>)
    };
    let hub =
        UdpTelemetryHub::bind_with("127.0.0.1:0", config, SessionTable::shared(), Some(factory))
            .expect("bind loopback");
    (hub, store)
}

#[test]
fn outage_and_stall_combined_over_udp_books_every_fault_exactly() {
    const SEED: u64 = 0xA5A5_0006;
    // Disconnect windows superimposed on stall windows, plus a little
    // background drop/duplicate/reorder: the combined profile the
    // individual soaks only cover separately. On a datagram transport
    // a disconnect boundary is purely its outage window of drops.
    let profile = ChaosProfile {
        name: "outage+stall/udp",
        drop: 0.02,
        corrupt: 0.0,
        truncate: 0.0,
        duplicate: 0.03,
        reorder: 0.05,
        reorder_span: 3,
        stall: Some(StallWindow {
            period: 24,
            hold: 6,
        }),
        disconnect: Some(DisconnectPlan {
            every: 40,
            outage: 4,
        }),
    };
    let (hub, store) = udp_sink_hub(threshold_track_config());
    let fleet = encode_fleet(6666);
    let merged = fleet.merge_aer(DEAD_TIME).merged;
    let header = datc::wire::SessionHeader::new(
        6,
        CHANNELS as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let mut tx = UdpSessionSender::connect(hub.local_addr(), header)
        .expect("connect")
        .with_chaos(ChaosLink::new(SEED, profile));
    for chunk in merged.chunks(CHUNK) {
        tx.send_events(chunk).expect("send under chaos");
    }
    let fates = tx.chaos_link().expect("chaos installed").fates().to_vec();
    let stats = tx.chaos_stats().expect("chaos installed");
    let client = tx.finish().expect("finish under chaos");
    let (expected_total, expected_per_channel) = expected_loss(&fates, &merged);
    assert!(
        expected_total > 0,
        "outage windows must cost events (seed {SEED:#x})"
    );
    assert!(
        stats.stalled > 0,
        "the stall window engaged (seed {SEED:#x})"
    );
    assert!(
        stats.disconnects >= 1,
        "outage windows engaged (seed {SEED:#x})"
    );
    assert_eq!(client.events_sent, merged.len() as u64);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while hub.session_count() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1, "seed {SEED:#x}");
    let captures = store.lock().unwrap();
    let survivors = captures[0].events.clone();
    assert_exact_books(
        &sessions[0],
        &survivors,
        merged.len() as u64,
        expected_total,
        &expected_per_channel,
        SEED,
        "outage+stall/udp",
    );
}

#[test]
fn lossy_udp_with_flow_control_repairs_in_window_losses() {
    const SEED: u64 = 0xA5A5_0007;
    let mut config = threshold_track_config();
    config.session.feedback_every = Some(std::time::Duration::from_millis(1));
    // Enough parking slack to ride out a repair round trip: with the
    // default 32-packet window the paced sender can overflow the
    // reorder buffer (declaring the hole lost) before the repaired
    // frame's feedback→resend cycle completes.
    config.session.reorder_window = 256;
    let (hub, store) = udp_sink_hub(config);
    let fleet = encode_fleet(7777);
    let merged = fleet.merge_aer(DEAD_TIME).merged;
    let header = datc::wire::SessionHeader::new(
        7,
        CHANNELS as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    // Replay budget far above the whole session: every loss the fate
    // log pins is in-window and therefore repairable. A modest AIMD
    // band keeps the sender slow enough that each repaired hole gets
    // its feedback round trip while later frames are still parked.
    let flow = FlowConfig {
        aimd: AimdConfig {
            floor_datagrams_per_s: 500.0,
            ceiling_datagrams_per_s: 4_000.0,
            ..AimdConfig::default()
        },
        replay_bytes: 1 << 20,
        drain: std::time::Duration::from_secs(5),
    };
    let mut tx = UdpSessionSender::connect(hub.local_addr(), header)
        .expect("connect")
        .with_chaos(ChaosLink::new(SEED, ChaosProfile::lossy()))
        .with_flow(flow);
    for chunk in merged.chunks(CHUNK) {
        tx.send_events(chunk).expect("send under chaos");
    }
    // Repairs bypass the chaos link, so the fate log is identical to a
    // repair-off run under the same seed: what it says was dropped is
    // exactly what repair had to win back.
    let fates = tx.chaos_link().expect("chaos installed").fates().to_vec();
    let client = tx.finish().expect("finish under chaos");
    let (dropped_events, _) = expected_loss(&fates, &merged);
    assert!(
        dropped_events > 0,
        "lossy profile must cost something (seed {SEED:#x})"
    );
    assert!(
        client.repairs >= 1,
        "feedback drove replay-window repairs (seed {SEED:#x})"
    );
    assert_eq!(client.events_sent, merged.len() as u64);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while hub.session_count() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1, "seed {SEED:#x}");
    let s = &sessions[0];
    assert!(s.report.stats.closed, "seed {SEED:#x}");
    // The books stay exact under repair: every offered event is either
    // decoded (once) or still counted lost — duplicates of repaired
    // spans are dropped, never double-booked.
    assert_eq!(
        s.report.stats.events_decoded + s.report.stats.events_lost,
        merged.len() as u64,
        "decoded + repaired + lost reconciles with sent (seed {SEED:#x})"
    );
    let recovered = dropped_events - s.report.stats.events_lost;
    assert!(
        recovered * 10 >= dropped_events * 9,
        "repair must recover >= 90% of in-window losses: \
         {recovered}/{dropped_events} recovered, {} still lost (seed {SEED:#x})",
        s.report.stats.events_lost
    );
    let captures = store.lock().unwrap();
    let survivors = captures[0].events.clone();
    assert_eq!(
        survivors.len() as u64,
        s.report.stats.events_decoded,
        "sink saw each decoded event exactly once (seed {SEED:#x})"
    );
    assert!(s.report.force_is_finite());
}

#[test]
fn pressured_hub_throttles_a_compliant_sender_instead_of_quarantining_it() {
    // A hub at its session cap stamps saturated pressure into every
    // FEEDBACK frame; a flow-controlled sender on a *clean* link must
    // be slowed to the AIMD floor — and never shed or quarantined.
    let mut config = threshold_track_config();
    config.max_sessions = Some(1);
    config.session.feedback_every = Some(std::time::Duration::from_millis(1));
    let (hub, store) = udp_sink_hub(config);
    let table = hub.session_table();
    let fleet = encode_fleet(8888);
    let merged = fleet.merge_aer(DEAD_TIME).merged;
    let header = datc::wire::SessionHeader::new(
        8,
        CHANNELS as u16,
        fleet.channels[0].events.tick_rate_hz(),
        fleet.channels[0].events.duration_s(),
    );
    let floor = 400.0;
    let flow = FlowConfig {
        aimd: AimdConfig {
            floor_datagrams_per_s: floor,
            ceiling_datagrams_per_s: 50_000.0,
            ..AimdConfig::default()
        },
        ..FlowConfig::default()
    };
    let mut tx = UdpSessionSender::connect(hub.local_addr(), header)
        .expect("connect")
        .with_flow(flow);
    for chunk in merged.chunks(CHUNK) {
        tx.send_events(chunk).expect("send");
        // Cadence room: the 1 ms feedback clock needs wall time to
        // tick often enough for the multiplicative decrease to bite.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Pressure is derived from the registry-backed health tallies, so
    // the throttling itself is observable only with metrics compiled
    // in; the exact-books half of the test holds either way.
    if cfg!(feature = "metrics") {
        let aimd = tx.flow().expect("flow installed").aimd();
        assert!(
            aimd.throttles() >= 1,
            "saturated hub pressure must throttle the sender"
        );
        assert!(
            (aimd.rate_datagrams_per_s() - floor).abs() < 1e-6,
            "repeated pressure reports drive the rate to the floor, got {}",
            aimd.rate_datagrams_per_s()
        );
    }
    let client = tx.finish().expect("finish");
    assert_eq!(client.events_sent, merged.len() as u64);
    assert_eq!(client.repairs, 0, "clean link: throttled, not repaired");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while hub.session_count() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let health = table.health();
    let sessions = hub.shutdown();
    assert_eq!(sessions.len(), 1);
    let s = &sessions[0];
    assert!(s.report.stats.closed);
    assert_eq!(s.report.stats.events_decoded, merged.len() as u64);
    assert_eq!(s.report.stats.events_lost, 0);
    if cfg!(feature = "metrics") {
        assert_eq!(health.quarantined, 0, "compliance was never punished");
        assert_eq!(health.shed, 0, "the in-cap peer was never shed");
    }
    let captures = store.lock().unwrap();
    assert_eq!(
        captures[0].events.len() as u64,
        s.report.stats.events_decoded
    );
}
