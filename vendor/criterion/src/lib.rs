//! Offline stand-in for `criterion`, covering the API surface the
//! workspace benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with throughput and
//! sample-size knobs, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — a warm-up pass, then a fixed
//! number of timed samples with median reporting — but it is a *real*
//! harness: every bench runs and prints wall-clock numbers, including
//! throughput in elements/second when configured.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Per-iteration timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the batch size chosen by the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates how many iterations fit in roughly `target` per sample.
fn calibrate<F: FnMut(&mut Bencher)>(routine: &mut F, target: Duration) -> u64 {
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            return iters.max(1);
        }
        let grown = if b.elapsed.is_zero() {
            iters * 16
        } else {
            ((iters as f64 * target.as_secs_f64() / b.elapsed.as_secs_f64()) as u64).max(iters + 1)
        };
        iters = grown.min(1 << 20);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    let iters = calibrate(&mut routine, Duration::from_millis(20));
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "bench {id:<44} {} [{} .. {}]{rate}",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:8.3} µs", secs * 1e6)
    } else {
        format!("{:8.1} ns", secs * 1e9)
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        routine: F,
    ) -> &mut Self {
        run_one(id.as_ref(), 10, None, routine);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        routine: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            self.throughput,
            routine,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
