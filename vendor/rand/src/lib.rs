//! Offline stand-in for `rand`, covering exactly the API surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` convenience methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid and deterministic, though its streams differ from the real
//! `StdRng` (ChaCha12). Nothing in the workspace depends on the exact
//! streams, only on determinism and distribution quality.

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i64);

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value with the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic default generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = super::splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
