//! Offline stand-in for `serde`.
//!
//! The container has no crates.io access, so the real serde cannot be
//! vendored. The workspace only uses `#[derive(Serialize, Deserialize)]`
//! as documentation of wire-format intent — nothing serialises at
//! runtime — so the traits are empty markers and the derives (re-exported
//! from the sibling `serde_derive` stub) expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
