//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real serde cannot
//! be fetched. Nothing in the workspace serialises at runtime — the
//! derives only document intent — so the macros expand to nothing and the
//! traits in the sibling `serde` stub are pure markers.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
