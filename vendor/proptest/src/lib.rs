//! Offline stand-in for `proptest`, covering the API surface the
//! workspace property tests use: the `proptest!` macro with an optional
//! `#![proptest_config(..)]` header, range / tuple / `Just` / `any` /
//! `prop_oneof!` / `collection::vec` strategies, `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Semantics are the useful core of the real crate — N randomized,
//! deterministic cases per test — without shrinking: a failing case
//! panics with the case index and the generated inputs' `Debug` output
//! left to the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving value production.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic generator for case number `case` of a test.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(0xD47C_0000_0000_0000 ^ case))
    }

    /// Uniform u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform usize in [lo, hi).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between homogeneous strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<S>(Vec<S>);

impl<S> OneOf<S> {
    /// Wraps candidate strategies; one is drawn uniformly per case.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(options)
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.usize_in(0, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a random length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.usize_in(self.len.start, self.len.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a vector strategy with element strategy `element` and a
    /// length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Namespaced helpers mirroring `proptest::prop`.
pub mod prop {
    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// An index into a collection of as-yet-unknown length.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Resolves the index against a collection of length `len`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Any, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn` runs `cases` times with fresh
/// random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
